//! Event-driven scheduling structures for the out-of-order core.
//!
//! The original pipeline walked the entire ROB once per stage per cycle
//! — completion, store-data capture, branch resolution, and issue were
//! each O(ROB) even on cycles where nothing could possibly happen. The
//! [`Scheduler`] replaces those scans with explicit event sets keyed by
//! sequence number ([`Seq`]), all maintained incrementally by the
//! pipeline:
//!
//! * a **completion event wheel** (`BTreeMap<cycle, Vec<Seq>>`): a µop
//!   entering execution schedules exactly one completion event, so the
//!   completion stage touches only µops finishing *this* cycle;
//! * **per-physical-register dependent lists**: a dispatched µop whose
//!   operands are not ready registers on one unready source; when that
//!   register is written back the list is drained and the µop either
//!   becomes issue-ready or re-registers on its next unready source
//!   (consumers are woken by producers instead of the issue stage
//!   re-polling every waiting µop's sources);
//! * an **issue-ready set**: the Waiting µops whose operand-readiness
//!   predicate holds — the only µops the issue stage examines;
//! * a **waiting set** (all Waiting µops in age order) — needed because
//!   the issue window counts *every* waiting µop toward `iq_size`,
//!   ready or not, so the cutoff sequence must be derivable exactly;
//! * a **store-data waiter set**: stores (and calls) that have computed
//!   their address but not yet captured their data operand;
//! * a **wakeup-pending set**: completed µops whose result broadcast the
//!   defense is still denying (`may_wakeup`) — re-checked each cycle
//!   until granted, exactly like the old per-ROB scan;
//! * a **resolve-pending set**: executed, unresolved, mispredicted
//!   branches — the exact candidate set of `resolve_branches`;
//! * an **unresolved-branch set** (every in-flight branch that has not
//!   resolved): its minimum is the speculative frontier's
//!   `oldest_unresolved_branch`, making the frontier O(1) to snapshot.
//!
//! Sequence numbers are unique and never reused, so stale entries (from
//! squashed µops) are filtered lazily: wheel slots and dependent lists
//! are checked against the ROB when drained, while the ordered sets are
//! cleaned eagerly on squash with `split_off` (everything younger than
//! the surviving sequence is discarded in one O(log n) operation).
//!
//! The scheduler also powers **idle-cycle fast-forward**: when a tick
//! makes no progress (see [`Scheduler::progress`]), the pipeline asks
//! for the next cycle at which anything can change
//! ([`Scheduler::next_completion_cycle`], merged with front-end stall
//! deadlines by the core) and jumps there, bulk-attributing the skipped
//! blocked/no-commit cycles so `Stats` and the trace/audit
//! reconciliation stay byte-exact. See `DESIGN.md` for the invariant
//! argument.

use crate::defense::Seq;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Event-driven scheduling state owned by the core (see module docs).
///
/// All sets are keyed by [`Seq`] — unique, monotonically increasing,
/// never reused — so age-order iteration of any set reproduces the ROB
/// scan order of the original per-cycle loops.
#[derive(Debug, Default)]
pub(crate) struct Scheduler {
    /// Completion event wheel: done-cycle → µops finishing that cycle.
    wheel: BTreeMap<u64, Vec<Seq>>,
    /// Every µop currently in `UopStatus::Waiting`, in age order.
    pub waiting: BTreeSet<Seq>,
    /// Waiting µops whose operand-readiness predicate holds.
    pub issue_ready: BTreeSet<Seq>,
    /// Completed µops with results whose wakeup the defense has not yet
    /// granted.
    pub wakeup_pending: BTreeSet<Seq>,
    /// Stores/calls with a computed address still awaiting data capture.
    pub store_waiters: BTreeSet<Seq>,
    /// Executed, unresolved, mispredicted branches (resolve candidates).
    pub resolve_pending: BTreeSet<Seq>,
    /// Every in-flight branch that has not resolved (frontier input).
    pub unresolved_branches: BTreeSet<Seq>,
    /// Every in-flight load (including `ret`), in age order: the memory
    /// disambiguation scans walk these instead of the whole ROB.
    pub inflight_loads: BTreeSet<Seq>,
    /// Every in-flight store (including `call`), in age order.
    pub inflight_stores: BTreeSet<Seq>,
    /// Per-physical-register dependent lists: µops parked on one unready
    /// source register each.
    dep_lists: Vec<Vec<Seq>>,
    /// Whether the current tick changed any simulator state (beyond
    /// blocked-cycle accounting). Cleared at tick start; an un-set flag
    /// at tick end certifies the cycle is repeatable and fast-forward is
    /// sound.
    progress: bool,
    /// Scratch buffer recycled by the pipeline's per-stage iteration
    /// (sets cannot be mutated while iterated).
    pub scratch: Vec<Seq>,
}

impl Scheduler {
    /// Creates a scheduler for a core with `n_phys` physical registers.
    pub fn new(n_phys: usize) -> Scheduler {
        Scheduler {
            dep_lists: vec![Vec::new(); n_phys],
            ..Scheduler::default()
        }
    }

    /// Empties every event structure in place, keeping the dependent-
    /// list and scratch allocations (the `Core::reset` arena path).
    pub fn reset(&mut self) {
        self.wheel.clear();
        self.waiting.clear();
        self.issue_ready.clear();
        self.wakeup_pending.clear();
        self.store_waiters.clear();
        self.resolve_pending.clear();
        self.unresolved_branches.clear();
        self.inflight_loads.clear();
        self.inflight_stores.clear();
        for list in &mut self.dep_lists {
            list.clear();
        }
        self.progress = false;
        self.scratch.clear();
    }

    // ---- completion wheel -------------------------------------------

    /// Schedules `seq` to complete at `done`.
    pub fn schedule_completion(&mut self, done: u64, seq: Seq) {
        self.wheel.entry(done).or_default().push(seq);
    }

    /// Removes and returns every completion event due at or before
    /// `cycle`, in age order. Stale events (squashed µops) survive here
    /// and are filtered by the caller against the ROB.
    pub fn pop_completions(&mut self, cycle: u64, out: &mut Vec<Seq>) {
        out.clear();
        while let Some(entry) = self.wheel.first_entry() {
            if *entry.key() > cycle {
                break;
            }
            out.extend(entry.remove());
        }
        // Multiple slots can drain at once only after a squash re-issues
        // work; keep age order so processing matches the old ROB scan.
        out.sort_unstable();
    }

    /// The cycle of the earliest outstanding completion event, if any.
    pub fn next_completion_cycle(&self) -> Option<u64> {
        self.wheel.keys().next().copied()
    }

    // ---- dependent lists --------------------------------------------

    /// Parks `seq` until physical register `phys` is written back.
    pub fn register_dep(&mut self, phys: usize, seq: Seq) {
        self.dep_lists[phys].push(seq);
    }

    /// Takes the dependent list of `phys` for draining (the caller
    /// re-registers entries that are still not ready).
    pub fn take_deps(&mut self, phys: usize) -> Vec<Seq> {
        std::mem::take(&mut self.dep_lists[phys])
    }

    // ---- squash -----------------------------------------------------

    /// Discards every entry younger than `surviving` from the ordered
    /// sets. Wheel slots and dependent lists are left to lazy filtering:
    /// squashed sequence numbers never reappear in the ROB, so a stale
    /// entry can never be mistaken for live work.
    pub fn squash_after(&mut self, surviving: Seq) {
        let bound = surviving + 1;
        for set in [
            &mut self.waiting,
            &mut self.issue_ready,
            &mut self.wakeup_pending,
            &mut self.store_waiters,
            &mut self.resolve_pending,
            &mut self.unresolved_branches,
            &mut self.inflight_loads,
            &mut self.inflight_stores,
        ] {
            set.split_off(&bound);
        }
    }

    // ---- progress flag ----------------------------------------------

    /// Clears the progress flag at tick start.
    pub fn clear_progress(&mut self) {
        self.progress = false;
    }

    /// Marks that this tick changed simulator state.
    pub fn mark_progress(&mut self) {
        self.progress = true;
    }

    /// Whether this tick changed simulator state.
    pub fn progress(&self) -> bool {
        self.progress
    }
}

// ---------------------------------------------------------------------
// Fetch-group hand-off
// ---------------------------------------------------------------------

/// One fetched µop, as produced by the fetch stage: the static index
/// plus the dynamic prediction state rename needs. Per-entry front-end
/// timing lives on the owning [`FetchGroup`] — all µops fetched in one
/// cycle become rename-ready together.
pub(crate) struct FetchEntry {
    /// Static instruction index.
    pub idx: u32,
    /// Predicted next instruction index (`None` = predicted stop).
    pub pred_next: Option<u32>,
    /// For conditional branches: predicted direction.
    pub pred_taken: bool,
    /// TAGE global-history snapshot from before this µop's fetch.
    pub hist_snapshot: u64,
    /// Interned RSB snapshot from before this µop's fetch.
    pub rsb_snapshot: Arc<[u64]>,
}

/// A fetch group: the µops fetched in one cycle, handed to rename as a
/// unit. A group ends at a predicted-taken control transfer, at the
/// fetch width, or at a front-end stall (L1I miss / queue cap).
pub(crate) struct FetchGroup {
    /// Cycle at which the whole group reaches rename (fetch cycle +
    /// front-end depth). Strictly increasing across queued groups, so
    /// one group-level check replaces the old per-entry check exactly.
    pub ready_cycle: u64,
    /// Index of the next unconsumed entry (rename may drain a group
    /// across several cycles under structural stalls).
    cursor: usize,
    entries: Vec<FetchEntry>,
}

impl FetchGroup {
    /// Entries rename has not consumed yet.
    pub fn remaining(&self) -> &[FetchEntry] {
        &self.entries[self.cursor..]
    }
}

/// The front-end queue in group form: fetch pushes one [`FetchGroup`]
/// per cycle; rename consumes entries from the front group in order.
/// Group entry buffers are pooled so the steady state allocates nothing
/// (the PR 5 arena discipline).
#[derive(Default)]
pub(crate) struct FetchQueue {
    groups: VecDeque<FetchGroup>,
    /// Spent entry buffers, kept for reuse.
    pool: Vec<Vec<FetchEntry>>,
    /// Total unconsumed entries across all groups (the old
    /// `fetch_queue.len()` — the fetch stage's cap is on µops, not
    /// groups).
    pending: usize,
}

impl FetchQueue {
    /// Takes an empty entry buffer for fetch to fill (pooled).
    pub fn begin_group(&mut self) -> Vec<FetchEntry> {
        self.pool.pop().unwrap_or_default()
    }

    /// Queues a filled group with its rename-ready cycle. An empty
    /// buffer (fetch stalled before producing anything) is returned to
    /// the pool without queuing a group.
    pub fn push_group(&mut self, entries: Vec<FetchEntry>, ready_cycle: u64) {
        if entries.is_empty() {
            self.pool.push(entries);
            return;
        }
        debug_assert!(
            self.groups
                .back()
                .is_none_or(|g| g.ready_cycle < ready_cycle),
            "group ready cycles must be strictly increasing"
        );
        self.pending += entries.len();
        self.groups.push_back(FetchGroup {
            ready_cycle,
            cursor: 0,
            entries,
        });
    }

    /// The front group's next unconsumed entry, with the group's
    /// ready cycle.
    pub fn head(&self) -> Option<(&FetchEntry, u64)> {
        self.groups
            .front()
            .map(|g| (&g.entries[g.cursor], g.ready_cycle))
    }

    /// The front group's ready cycle (fast-forward wake point).
    pub fn head_ready_cycle(&self) -> Option<u64> {
        self.groups.front().map(|g| g.ready_cycle)
    }

    /// The front group itself (diagnostics).
    pub fn front_group(&self) -> Option<&FetchGroup> {
        self.groups.front()
    }

    /// Consumes the entry returned by [`FetchQueue::head`]; exhausted
    /// groups are retired and their buffers pooled.
    pub fn advance_head(&mut self) {
        let g = self.groups.front_mut().expect("advance past empty queue");
        g.cursor += 1;
        self.pending -= 1;
        if g.cursor == g.entries.len() {
            let mut g = self.groups.pop_front().expect("front exists");
            g.entries.clear();
            self.pool.push(g.entries);
        }
    }

    /// Total unconsumed µops across all groups.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Discards every queued group (fetch redirect), pooling their
    /// buffers.
    pub fn clear(&mut self) {
        while let Some(mut g) = self.groups.pop_front() {
            g.entries.clear();
            self.pool.push(g.entries);
        }
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_pops_due_events_in_age_order() {
        let mut s = Scheduler::new(4);
        s.schedule_completion(10, 3);
        s.schedule_completion(5, 7);
        s.schedule_completion(5, 2);
        s.schedule_completion(12, 1);
        let mut out = Vec::new();
        s.pop_completions(4, &mut out);
        assert!(out.is_empty());
        s.pop_completions(10, &mut out);
        assert_eq!(out, vec![2, 3, 7]);
        assert_eq!(s.next_completion_cycle(), Some(12));
        s.pop_completions(100, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(s.next_completion_cycle(), None);
    }

    #[test]
    fn squash_discards_only_younger_entries() {
        let mut s = Scheduler::new(4);
        for seq in [1u64, 5, 9] {
            s.waiting.insert(seq);
            s.issue_ready.insert(seq);
            s.wakeup_pending.insert(seq);
            s.store_waiters.insert(seq);
            s.resolve_pending.insert(seq);
            s.unresolved_branches.insert(seq);
            s.inflight_loads.insert(seq);
            s.inflight_stores.insert(seq);
        }
        s.squash_after(5);
        for set in [
            &s.waiting,
            &s.issue_ready,
            &s.wakeup_pending,
            &s.store_waiters,
            &s.resolve_pending,
            &s.unresolved_branches,
            &s.inflight_loads,
            &s.inflight_stores,
        ] {
            assert_eq!(set.iter().copied().collect::<Vec<_>>(), vec![1, 5]);
        }
    }

    #[test]
    fn dep_lists_roundtrip() {
        let mut s = Scheduler::new(2);
        s.register_dep(1, 4);
        s.register_dep(1, 8);
        assert_eq!(s.take_deps(1), vec![4, 8]);
        assert!(s.take_deps(1).is_empty());
        assert!(s.take_deps(0).is_empty());
    }

    #[test]
    fn progress_flag_lifecycle() {
        let mut s = Scheduler::new(1);
        assert!(!s.progress());
        s.mark_progress();
        assert!(s.progress());
        s.clear_progress();
        assert!(!s.progress());
    }

    fn entry(idx: u32) -> FetchEntry {
        FetchEntry {
            idx,
            pred_next: Some(idx + 1),
            pred_taken: false,
            hist_snapshot: 0,
            rsb_snapshot: Arc::from(&[][..]),
        }
    }

    #[test]
    fn fetch_queue_groups_drain_in_order() {
        let mut q = FetchQueue::default();
        assert!(q.head().is_none());
        let mut g = q.begin_group();
        g.push(entry(0));
        g.push(entry(1));
        q.push_group(g, 10);
        let mut g = q.begin_group();
        g.push(entry(2));
        q.push_group(g, 11);
        assert_eq!(q.pending(), 3);
        assert_eq!(q.head_ready_cycle(), Some(10));

        let (e, rc) = q.head().expect("head");
        assert_eq!((e.idx, rc), (0, 10));
        q.advance_head();
        // The front group is handed over as a slice; the cursor tracks
        // what rename has consumed.
        let rem: Vec<u32> = q.groups[0].remaining().iter().map(|e| e.idx).collect();
        assert_eq!(rem, vec![1]);
        let (e, rc) = q.head().expect("head");
        assert_eq!((e.idx, rc), (1, 10));
        q.advance_head();
        // First group exhausted: head moves to the second group.
        let (e, rc) = q.head().expect("head");
        assert_eq!((e.idx, rc), (2, 11));
        assert_eq!(q.pending(), 1);
        q.advance_head();
        assert!(q.head().is_none());
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn fetch_queue_empty_group_and_clear_recycle() {
        let mut q = FetchQueue::default();
        let g = q.begin_group();
        q.push_group(g, 5); // empty: no group queued
        assert!(q.head().is_none());
        let mut g = q.begin_group();
        g.push(entry(7));
        q.push_group(g, 6);
        assert_eq!(q.pending(), 1);
        q.clear();
        assert_eq!(q.pending(), 0);
        assert!(q.head().is_none());
        // Pooled buffers come back empty.
        assert!(q.begin_group().is_empty());
    }
}
