//! Set-associative cache timing model with per-byte metadata bits.
//!
//! Caches here are *tag + metadata* models: data always comes from the
//! functional memory (plus store-queue forwarding), so the caches decide
//! latency, and — for the L1D — carry the per-byte protection/shadow bits
//! that ProtISA (§IV-C2a) and SPT attach to it. Evicting a line drops its
//! metadata, which is exactly the "L1D evictions cause ProtISA to forget
//! what data was unprotected" behaviour.

use crate::CacheConfig;

/// One cache line: tag plus per-byte metadata bits.
#[derive(Clone, Debug)]
struct Line {
    /// Line-aligned address (`addr & !(line_bytes-1)`), or `None` if
    /// invalid.
    tag: Option<u64>,
    /// LRU timestamp.
    lru: u64,
    /// Per-byte metadata (ProtISA protection bits / SPT shadow bits).
    meta: Box<[bool]>,
}

/// A set-associative, LRU, write-allocate cache (timing + metadata).
///
/// # Examples
///
/// ```
/// use protean_sim::{Cache, CacheConfig};
///
/// let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 3 };
/// let mut c = Cache::new(cfg, true);
/// assert!(!c.access(0x100).hit);
/// assert!(c.access(0x100).hit); // now resident
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines in one contiguous allocation: way `w` of set `s` lives
    /// at index `s * ways + w`. Every per-set operation touches one
    /// cache-friendly slice instead of chasing a per-set heap pointer.
    lines: Vec<Line>,
    /// Metadata value for bytes of a newly filled line.
    meta_fill: bool,
    clock: u64,
    /// Hits and misses, for statistics.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// The line-aligned address of any line evicted to make room.
    pub evicted: Option<u64>,
}

impl Cache {
    /// Creates an empty cache. `meta_fill` is the metadata value given to
    /// every byte of a newly allocated line (ProtISA: `true` = protected;
    /// SPT shadow bits: `false` = private).
    pub fn new(cfg: CacheConfig, meta_fill: bool) -> Cache {
        let lines = (0..cfg.sets() * cfg.ways)
            .map(|_| Line {
                tag: None,
                lru: 0,
                meta: vec![meta_fill; cfg.line_bytes].into_boxed_slice(),
            })
            .collect();
        Cache {
            cfg,
            lines,
            meta_fill,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Empties the cache in place, reusing the line and metadata
    /// allocations (the `Core::reset` arena path). `meta_fill` may
    /// change because it is policy-derived and the arena is reused
    /// across policies.
    pub fn reset(&mut self, meta_fill: bool) {
        for line in &mut self.lines {
            line.tag = None;
            line.lru = 0;
            line.meta.fill(meta_fill);
        }
        self.meta_fill = meta_fill;
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// The ways of set `idx`, in way order.
    fn set(&self, idx: usize) -> &[Line] {
        let base = idx * self.cfg.ways;
        &self.lines[base..base + self.cfg.ways]
    }

    /// Mutable ways of set `idx`, in way order.
    fn set_mut(&mut self, idx: usize) -> &mut [Line] {
        let base = idx * self.cfg.ways;
        &mut self.lines[base..base + self.cfg.ways]
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) % self.cfg.sets() as u64) as usize
    }

    /// Returns `true` if the line containing `addr` is resident (no LRU
    /// update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        self.set(self.set_index(addr))
            .iter()
            .any(|l| l.tag == Some(la))
    }

    /// Accesses (and allocates on miss) the line containing `addr`,
    /// updating LRU. Returns hit/miss and any eviction.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.clock += 1;
        let la = self.line_addr(addr);
        let set_idx = self.set_index(addr);
        let clock = self.clock;
        let meta_fill = self.meta_fill;
        let base = set_idx * self.cfg.ways;
        let set = &mut self.lines[base..base + self.cfg.ways];
        if let Some(line) = set.iter_mut().find(|l| l.tag == Some(la)) {
            line.lru = clock;
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;
        // Victim: invalid way, else LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|l| (l.tag.is_some(), l.lru))
            .expect("cache set has ways");
        let evicted = victim.tag.take();
        victim.tag = Some(la);
        victim.lru = clock;
        victim.meta.fill(meta_fill);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Invalidates the line containing `addr` (coherence), dropping its
    /// metadata. Returns `true` if a line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        let set_idx = self.set_index(addr);
        let meta_fill = self.meta_fill;
        for line in self.set_mut(set_idx) {
            if line.tag == Some(la) {
                line.tag = None;
                line.meta.fill(meta_fill);
                return true;
            }
        }
        false
    }

    /// ORs the metadata bits of `[addr, addr+size)`. Bytes on non-resident
    /// lines contribute `meta_fill` (i.e. protected for ProtISA).
    pub fn meta_any(&self, addr: u64, size: u64) -> bool {
        self.meta_fold(addr, size, false, |acc, b| acc | b)
    }

    /// ANDs the metadata bits of `[addr, addr+size)` (non-resident bytes
    /// contribute `meta_fill`).
    pub fn meta_all(&self, addr: u64, size: u64) -> bool {
        self.meta_fold(addr, size, true, |acc, b| acc & b)
    }

    /// Folds `f` over the `size` metadata bits starting at `addr`.
    ///
    /// Iterates by an explicit *byte count* with wrapping address
    /// arithmetic: addresses near `u64::MAX` are fuzzer-reachable, where
    /// `addr + size` (or `line_addr + line_bytes`) overflows — and a
    /// wrapping `[addr, addr+size)` range must visit exactly `size`
    /// bytes (wrapping through 0), not walk until the cursor happens to
    /// equal the wrapped end.
    fn meta_fold(&self, addr: u64, size: u64, init: bool, f: impl Fn(bool, bool) -> bool) -> bool {
        let mut acc = init;
        let mut a = addr;
        let mut remaining = size;
        while remaining > 0 {
            let la = self.line_addr(a);
            let offset = a - la;
            let chunk = (self.cfg.line_bytes as u64 - offset).min(remaining);
            let set = self.set(self.set_index(a));
            match set.iter().find(|l| l.tag == Some(la)) {
                Some(line) => {
                    for i in 0..chunk {
                        acc = f(acc, line.meta[(offset + i) as usize]);
                    }
                }
                None => {
                    for _ in 0..chunk {
                        acc = f(acc, self.meta_fill);
                    }
                }
            }
            a = a.wrapping_add(chunk);
            remaining -= chunk;
        }
        acc
    }

    /// Sets the metadata bits of `[addr, addr+size)` on resident lines to
    /// `value` (non-resident bytes are untouched: the cache has forgotten
    /// them).
    pub fn meta_set(&mut self, addr: u64, size: u64, value: bool) {
        // Byte-count bound + wrapping cursor, as in `meta_fold`.
        let line_bytes = self.cfg.line_bytes as u64;
        let mut a = addr;
        let mut remaining = size;
        while remaining > 0 {
            let la = self.line_addr(a);
            let offset = a - la;
            let chunk = (line_bytes - offset).min(remaining);
            let set_idx = self.set_index(a);
            if let Some(line) = self.set_mut(set_idx).iter_mut().find(|l| l.tag == Some(la)) {
                for i in 0..chunk {
                    line.meta[(offset + i) as usize] = value;
                }
            }
            a = a.wrapping_add(chunk);
            remaining -= chunk;
        }
    }

    /// The adversary-visible tag state: for each set, the resident line
    /// addresses ordered by recency (a FLUSH+RELOAD/PRIME+PROBE-grade
    /// observation).
    pub fn tag_observation(&self) -> Vec<u64> {
        let mut obs = Vec::with_capacity(self.cfg.sets() * (self.cfg.ways + 1));
        // One scratch buffer reused across sets (ways is small and
        // constant) instead of a fresh allocation per set.
        let mut resident: Vec<(u64, u64)> = Vec::with_capacity(self.cfg.ways);
        for (i, set) in self.lines.chunks_exact(self.cfg.ways).enumerate() {
            resident.clear();
            resident.extend(set.iter().filter_map(|l| l.tag.map(|t| (l.lru, t))));
            resident.sort_unstable();
            obs.push(i as u64);
            obs.extend(resident.iter().map(|&(_, t)| t));
        }
        obs
    }

    /// Hit rate so far (1.0 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(
            CacheConfig {
                size_bytes: 256,
                ways: 2,
                line_bytes: 64,
                latency: 1,
            },
            true,
        )
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x40).hit);
        assert!(c.access(0x40).hit);
        assert!(c.access(0x7f).hit); // same line
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny(); // 2 sets, 2 ways
                            // Three lines mapping to set 0 (line addrs multiples of 128).
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // touch to make 0x080 LRU
        let r = c.access(0x100);
        assert_eq!(r.evicted, Some(0x080));
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn meta_bits_lifecycle() {
        let mut c = tiny();
        // Not resident: every byte reads as meta_fill (protected).
        assert!(c.meta_any(0x40, 8));
        c.access(0x40);
        assert!(c.meta_any(0x40, 8)); // fill default = protected
        c.meta_set(0x40, 8, false);
        assert!(!c.meta_any(0x40, 8));
        assert!(c.meta_any(0x40, 9)); // 9th byte still protected
                                      // Eviction forgets the unprotection.
        c.access(0x0c0);
        c.access(0x140); // evicts 0x40 (LRU)
        assert!(!c.probe(0x40));
        assert!(c.meta_any(0x40, 8));
    }

    #[test]
    fn meta_all_vs_any() {
        let mut c = tiny();
        c.access(0x00);
        c.meta_set(0x00, 4, false);
        assert!(!c.meta_all(0x00, 8)); // half unprotected
        assert!(c.meta_any(0x00, 8));
        assert!(!c.meta_any(0x00, 4));
        assert!(c.meta_all(0x04, 4));
    }

    #[test]
    fn invalidate_drops_meta() {
        let mut c = tiny();
        c.access(0x40);
        c.meta_set(0x40, 64, false);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(c.meta_any(0x40, 1));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn tag_observation_reflects_contents() {
        let mut a = tiny();
        let mut b = tiny();
        a.access(0x000);
        b.access(0x080);
        assert_ne!(a.tag_observation(), b.tag_observation());
        let mut c = tiny();
        c.access(0x000);
        assert_eq!(a.tag_observation(), c.tag_observation());
    }

    #[test]
    fn meta_ops_near_u64_max_do_not_overflow() {
        // Regression: `line_end = line_addr + line_bytes` overflowed for
        // addresses on the last line of the address space (panic under
        // debug overflow checks). The addresses are fuzzer-reachable.
        let mut c = tiny();
        let addr = u64::MAX - 3;
        c.access(addr);
        assert!(c.meta_any(addr, 4));
        c.meta_set(addr, 4, false);
        assert!(!c.meta_any(addr, 4));
        assert!(!c.meta_all(u64::MAX, 1));
    }

    #[test]
    fn meta_ops_wrapping_range_visits_size_bytes() {
        // Regression: a range wrapping past u64::MAX must visit exactly
        // `size` bytes (through 0), not degenerate into a ~2^64-byte
        // walk. 8 bytes starting at MAX-3: 4 on the last line, 4 on line
        // 0.
        let mut c = tiny();
        let addr = u64::MAX - 3;
        c.access(addr);
        c.access(0);
        c.meta_set(addr, 8, false);
        assert!(!c.meta_any(addr, 8));
        assert!(!c.meta_any(0, 4));
        assert!(c.meta_any(0, 5)); // 5th byte of line 0 untouched
                                   // Unprotect only the wrapped-to half; the high half stays set.
        let mut c2 = tiny();
        c2.access(addr);
        c2.access(0);
        c2.meta_set(0, 4, false);
        assert!(c2.meta_any(addr, 8));
        assert!(!c2.meta_all(addr, 8));
    }

    #[test]
    fn meta_cross_line() {
        let mut c = tiny();
        c.access(0x78); // line 0x40
        c.access(0x80); // line 0x80
        c.meta_set(0x7c, 8, false); // spans both lines
        assert!(!c.meta_any(0x7c, 8));
    }
}
