//! Set-associative cache timing model with per-byte metadata bits.
//!
//! Caches here are *tag + metadata* models: data always comes from the
//! functional memory (plus store-queue forwarding), so the caches decide
//! latency, and — for the L1D — carry the per-byte protection/shadow bits
//! that ProtISA (§IV-C2a) and SPT attach to it. Evicting a line drops its
//! metadata, which is exactly the "L1D evictions cause ProtISA to forget
//! what data was unprotected" behaviour.

use crate::CacheConfig;

/// One cache line: tag plus per-byte metadata bits.
#[derive(Clone, Debug)]
struct Line {
    /// Line-aligned address (`addr & !(line_bytes-1)`), or `None` if
    /// invalid.
    tag: Option<u64>,
    /// LRU timestamp.
    lru: u64,
    /// Per-byte metadata (ProtISA protection bits / SPT shadow bits).
    meta: Box<[bool]>,
}

/// A set-associative, LRU, write-allocate cache (timing + metadata).
///
/// # Examples
///
/// ```
/// use protean_sim::{Cache, CacheConfig};
///
/// let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 3 };
/// let mut c = Cache::new(cfg, true);
/// assert!(!c.access(0x100).hit);
/// assert!(c.access(0x100).hit); // now resident
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    /// Metadata value for bytes of a newly filled line.
    meta_fill: bool,
    clock: u64,
    /// Hits and misses, for statistics.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// The line-aligned address of any line evicted to make room.
    pub evicted: Option<u64>,
}

impl Cache {
    /// Creates an empty cache. `meta_fill` is the metadata value given to
    /// every byte of a newly allocated line (ProtISA: `true` = protected;
    /// SPT shadow bits: `false` = private).
    pub fn new(cfg: CacheConfig, meta_fill: bool) -> Cache {
        let sets = (0..cfg.sets())
            .map(|_| {
                (0..cfg.ways)
                    .map(|_| Line {
                        tag: None,
                        lru: 0,
                        meta: vec![meta_fill; cfg.line_bytes].into_boxed_slice(),
                    })
                    .collect()
            })
            .collect();
        Cache {
            cfg,
            sets,
            meta_fill,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) % self.cfg.sets() as u64) as usize
    }

    /// Returns `true` if the line containing `addr` is resident (no LRU
    /// update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        self.sets[self.set_index(addr)]
            .iter()
            .any(|l| l.tag == Some(la))
    }

    /// Accesses (and allocates on miss) the line containing `addr`,
    /// updating LRU. Returns hit/miss and any eviction.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.clock += 1;
        let la = self.line_addr(addr);
        let set_idx = self.set_index(addr);
        let clock = self.clock;
        let meta_fill = self.meta_fill;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == Some(la)) {
            line.lru = clock;
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;
        // Victim: invalid way, else LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|l| (l.tag.is_some(), l.lru))
            .expect("cache set has ways");
        let evicted = victim.tag.take();
        victim.tag = Some(la);
        victim.lru = clock;
        victim.meta.fill(meta_fill);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Invalidates the line containing `addr` (coherence), dropping its
    /// metadata. Returns `true` if a line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        let set_idx = self.set_index(addr);
        for line in &mut self.sets[set_idx] {
            if line.tag == Some(la) {
                line.tag = None;
                line.meta.fill(self.meta_fill);
                return true;
            }
        }
        false
    }

    /// ORs the metadata bits of `[addr, addr+size)`. Bytes on non-resident
    /// lines contribute `meta_fill` (i.e. protected for ProtISA).
    pub fn meta_any(&self, addr: u64, size: u64) -> bool {
        self.meta_fold(addr, size, false, |acc, b| acc | b)
    }

    /// ANDs the metadata bits of `[addr, addr+size)` (non-resident bytes
    /// contribute `meta_fill`).
    pub fn meta_all(&self, addr: u64, size: u64) -> bool {
        self.meta_fold(addr, size, true, |acc, b| acc & b)
    }

    fn meta_fold(&self, addr: u64, size: u64, init: bool, f: impl Fn(bool, bool) -> bool) -> bool {
        let mut acc = init;
        let mut a = addr;
        let end = addr.wrapping_add(size);
        while a != end {
            let la = self.line_addr(a);
            let set = &self.sets[self.set_index(a)];
            let line = set.iter().find(|l| l.tag == Some(la));
            let line_end = la + self.cfg.line_bytes as u64;
            let chunk_end = end.min(line_end).max(a + 1);
            match line {
                Some(line) => {
                    for b in a..chunk_end {
                        acc = f(acc, line.meta[(b - la) as usize]);
                    }
                }
                None => {
                    for _ in a..chunk_end {
                        acc = f(acc, self.meta_fill);
                    }
                }
            }
            a = chunk_end;
        }
        acc
    }

    /// Sets the metadata bits of `[addr, addr+size)` on resident lines to
    /// `value` (non-resident bytes are untouched: the cache has forgotten
    /// them).
    pub fn meta_set(&mut self, addr: u64, size: u64, value: bool) {
        let line_bytes = self.cfg.line_bytes as u64;
        let mut a = addr;
        let end = addr.wrapping_add(size);
        while a != end {
            let la = self.line_addr(a);
            let set_idx = self.set_index(a);
            let line_end = la + line_bytes;
            let chunk_end = end.min(line_end).max(a + 1);
            if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.tag == Some(la)) {
                for b in a..chunk_end {
                    line.meta[(b - la) as usize] = value;
                }
            }
            a = chunk_end;
        }
    }

    /// The adversary-visible tag state: for each set, the resident line
    /// addresses ordered by recency (a FLUSH+RELOAD/PRIME+PROBE-grade
    /// observation).
    pub fn tag_observation(&self) -> Vec<u64> {
        let mut obs = Vec::new();
        for (i, set) in self.sets.iter().enumerate() {
            let mut lines: Vec<(u64, u64)> = set
                .iter()
                .filter_map(|l| l.tag.map(|t| (l.lru, t)))
                .collect();
            lines.sort_unstable();
            obs.push(i as u64);
            obs.extend(lines.into_iter().map(|(_, t)| t));
        }
        obs
    }

    /// Hit rate so far (1.0 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(
            CacheConfig {
                size_bytes: 256,
                ways: 2,
                line_bytes: 64,
                latency: 1,
            },
            true,
        )
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x40).hit);
        assert!(c.access(0x40).hit);
        assert!(c.access(0x7f).hit); // same line
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny(); // 2 sets, 2 ways
                            // Three lines mapping to set 0 (line addrs multiples of 128).
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // touch to make 0x080 LRU
        let r = c.access(0x100);
        assert_eq!(r.evicted, Some(0x080));
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn meta_bits_lifecycle() {
        let mut c = tiny();
        // Not resident: every byte reads as meta_fill (protected).
        assert!(c.meta_any(0x40, 8));
        c.access(0x40);
        assert!(c.meta_any(0x40, 8)); // fill default = protected
        c.meta_set(0x40, 8, false);
        assert!(!c.meta_any(0x40, 8));
        assert!(c.meta_any(0x40, 9)); // 9th byte still protected
                                      // Eviction forgets the unprotection.
        c.access(0x0c0);
        c.access(0x140); // evicts 0x40 (LRU)
        assert!(!c.probe(0x40));
        assert!(c.meta_any(0x40, 8));
    }

    #[test]
    fn meta_all_vs_any() {
        let mut c = tiny();
        c.access(0x00);
        c.meta_set(0x00, 4, false);
        assert!(!c.meta_all(0x00, 8)); // half unprotected
        assert!(c.meta_any(0x00, 8));
        assert!(!c.meta_any(0x00, 4));
        assert!(c.meta_all(0x04, 4));
    }

    #[test]
    fn invalidate_drops_meta() {
        let mut c = tiny();
        c.access(0x40);
        c.meta_set(0x40, 64, false);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(c.meta_any(0x40, 1));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn tag_observation_reflects_contents() {
        let mut a = tiny();
        let mut b = tiny();
        a.access(0x000);
        b.access(0x080);
        assert_ne!(a.tag_observation(), b.tag_observation());
        let mut c = tiny();
        c.access(0x000);
        assert_eq!(a.tag_observation(), c.tag_observation());
    }

    #[test]
    fn meta_cross_line() {
        let mut c = tiny();
        c.access(0x78); // line 0x40
        c.access(0x80); // line 0x80
        c.meta_set(0x7c, 8, false); // spans both lines
        assert!(!c.meta_any(0x7c, 8));
    }
}
