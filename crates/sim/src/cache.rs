//! Set-associative cache timing model with per-byte metadata bits.
//!
//! Caches here are *tag + metadata* models: data always comes from the
//! functional memory (plus store-queue forwarding), so the caches decide
//! latency, and — for the L1D — carry the per-byte protection/shadow bits
//! that ProtISA (§IV-C2a) and SPT attach to it. Evicting a line drops its
//! metadata, which is exactly the "L1D evictions cause ProtISA to forget
//! what data was unprotected" behaviour.
//!
//! # Data layout
//!
//! [`Cache`] is a structure-of-arrays: three flat vectors indexed by
//! `set * ways + way` instead of a `Vec` of per-line structs. Tags live
//! in one contiguous `Vec<u64>` (with [`INVALID_TAG`] as the
//! invalid-line sentinel), so a way probe is a linear scan of a few
//! adjacent words; LRU stamps live in a parallel `Vec<u64>`; and the
//! per-byte metadata is a bitmap of [`CacheConfig::meta_words_per_line`]
//! `u64` words per line, so `meta_any` / `meta_all` / `meta_set` are
//! masked word operations and a miss fill is one word store per 64 bytes
//! of line instead of a per-byte `bool` loop. [`BoolMetaCache`] retains
//! the original boxed-`bool` representation as a differential-test
//! oracle (see `tests/cache_flat_equiv.rs`).

use crate::CacheConfig;

/// Sentinel stored in [`Cache::tags`] for an invalid way. Real tags are
/// line-aligned addresses, and `line_bytes >= 2` (enforced in
/// [`Cache::new`]) means `u64::MAX` is never line-aligned, so the
/// sentinel can never collide with a resident line.
const INVALID_TAG: u64 = u64::MAX;

/// A set-associative, LRU, write-allocate cache (timing + metadata).
///
/// # Examples
///
/// ```
/// use protean_sim::{Cache, CacheConfig};
///
/// let cfg = CacheConfig { size_bytes: 1024, ways: 2, line_bytes: 64, latency: 3 };
/// let mut c = Cache::new(cfg, true);
/// assert!(!c.access(0x100).hit);
/// assert!(c.access(0x100).hit); // now resident
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Line tags in one flat array: way `w` of set `s` lives at index
    /// `s * ways + w`. [`INVALID_TAG`] marks an invalid way, so the hit
    /// probe is a branch-predictable scan of one contiguous `u64` slice.
    tags: Vec<u64>,
    /// LRU timestamps, parallel to `tags`.
    lru: Vec<u64>,
    /// Per-byte metadata bitmap: `words_per_line` `u64` words per line,
    /// bit `b` of word `w` covering byte `w * 64 + b` of the line.
    meta: Vec<u64>,
    /// `ceil(line_bytes / 64)` — cached from the config.
    words_per_line: usize,
    /// Metadata value for bytes of a newly filled line.
    meta_fill: bool,
    /// The word that fills a fresh line's metadata (`0` or `u64::MAX`).
    fill_word: u64,
    clock: u64,
    /// Hits and misses, for statistics.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

/// Result of a cache access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Whether the line was resident.
    pub hit: bool,
    /// The line-aligned address of any line evicted to make room.
    pub evicted: Option<u64>,
}

/// Mask selecting bits `[lo, lo + n)` of a `u64` word (`n <= 64`).
#[inline]
fn range_mask(lo: u64, n: u64) -> u64 {
    debug_assert!(lo < 64 && n >= 1 && lo + n <= 64);
    (u64::MAX >> (64 - n)) << lo
}

impl Cache {
    /// Creates an empty cache. `meta_fill` is the metadata value given to
    /// every byte of a newly allocated line (ProtISA: `true` = protected;
    /// SPT shadow bits: `false` = private).
    pub fn new(cfg: CacheConfig, meta_fill: bool) -> Cache {
        assert!(
            cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 2,
            "line_bytes must be a power of two >= 2 (INVALID_TAG sentinel)"
        );
        let lines = cfg.lines();
        let words_per_line = cfg.meta_words_per_line();
        let fill_word = if meta_fill { u64::MAX } else { 0 };
        Cache {
            cfg,
            tags: vec![INVALID_TAG; lines],
            lru: vec![0; lines],
            meta: vec![fill_word; lines * words_per_line],
            words_per_line,
            meta_fill,
            fill_word,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// A configuration-only husk with no line storage, for
    /// `std::mem::replace` swaps that need *a* `Cache` value which is
    /// then dropped unused (the shared-L3 hand-back in
    /// [`crate::Multicore`]). Accessing it panics.
    pub(crate) fn placeholder(cfg: CacheConfig) -> Cache {
        Cache {
            cfg,
            tags: Vec::new(),
            lru: Vec::new(),
            meta: Vec::new(),
            words_per_line: 0,
            meta_fill: true,
            fill_word: u64::MAX,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Empties the cache in place, reusing the flat arrays (the
    /// `Core::reset` arena path). `meta_fill` may change because it is
    /// policy-derived and the arena is reused across policies.
    pub fn reset(&mut self, meta_fill: bool) {
        self.meta_fill = meta_fill;
        self.fill_word = if meta_fill { u64::MAX } else { 0 };
        self.tags.fill(INVALID_TAG);
        self.lru.fill(0);
        self.meta.fill(self.fill_word);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) % self.cfg.sets() as u64) as usize
    }

    /// Index into the flat arrays of the resident way holding line `la`
    /// (a line-aligned address), or `None`. `la` can never equal
    /// [`INVALID_TAG`], so invalid ways never match.
    #[inline]
    fn find_way(&self, la: u64) -> Option<usize> {
        let base = self.set_index(la) * self.cfg.ways;
        self.tags[base..base + self.cfg.ways]
            .iter()
            .position(|&t| t == la)
            .map(|w| base + w)
    }

    /// Returns `true` if the line containing `addr` is resident (no LRU
    /// update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        self.find_way(self.line_addr(addr)).is_some()
    }

    /// Accesses (and allocates on miss) the line containing `addr`,
    /// updating LRU. Returns hit/miss and any eviction.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.clock += 1;
        let la = self.line_addr(addr);
        if let Some(idx) = self.find_way(la) {
            self.lru[idx] = self.clock;
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;
        // Victim: invalid way, else LRU — the *first* way with the
        // minimal (valid, lru) key, matching `Iterator::min_by_key`.
        let base = self.set_index(addr) * self.cfg.ways;
        let mut victim = base;
        let mut best = (self.tags[base] != INVALID_TAG, self.lru[base]);
        for idx in base + 1..base + self.cfg.ways {
            let key = (self.tags[idx] != INVALID_TAG, self.lru[idx]);
            if key < best {
                best = key;
                victim = idx;
            }
        }
        let evicted = (self.tags[victim] != INVALID_TAG).then_some(self.tags[victim]);
        self.tags[victim] = la;
        self.lru[victim] = self.clock;
        let mbase = victim * self.words_per_line;
        self.meta[mbase..mbase + self.words_per_line].fill(self.fill_word);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Invalidates the line containing `addr` (coherence), dropping its
    /// metadata. Returns `true` if a line was invalidated.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        match self.find_way(self.line_addr(addr)) {
            Some(idx) => {
                self.tags[idx] = INVALID_TAG;
                let mbase = idx * self.words_per_line;
                self.meta[mbase..mbase + self.words_per_line].fill(self.fill_word);
                true
            }
            None => false,
        }
    }

    /// ORs the metadata bits of `[addr, addr+size)`. Bytes on non-resident
    /// lines contribute `meta_fill` (i.e. protected for ProtISA).
    ///
    /// Iterates by an explicit *byte count* with wrapping address
    /// arithmetic: addresses near `u64::MAX` are fuzzer-reachable, where
    /// `addr + size` (or `line_addr + line_bytes`) overflows — and a
    /// wrapping `[addr, addr+size)` range must visit exactly `size`
    /// bytes (wrapping through 0). Short-circuits on the first set bit.
    pub fn meta_any(&self, addr: u64, size: u64) -> bool {
        let mut a = addr;
        let mut remaining = size;
        while remaining > 0 {
            let la = self.line_addr(a);
            let offset = a - la;
            let chunk = (self.cfg.line_bytes as u64 - offset).min(remaining);
            match self.find_way(la) {
                Some(idx) => {
                    if self.line_bits_any(idx, offset, chunk) {
                        return true;
                    }
                }
                // A non-resident chunk contributes `meta_fill` once —
                // OR is idempotent, so once per byte would be the same
                // answer for 64x the work.
                None => {
                    if self.meta_fill {
                        return true;
                    }
                }
            }
            a = a.wrapping_add(chunk);
            remaining -= chunk;
        }
        false
    }

    /// ANDs the metadata bits of `[addr, addr+size)` (non-resident bytes
    /// contribute `meta_fill`). Same wrapping byte-count contract as
    /// [`Cache::meta_any`]; short-circuits on the first clear bit.
    pub fn meta_all(&self, addr: u64, size: u64) -> bool {
        let mut a = addr;
        let mut remaining = size;
        while remaining > 0 {
            let la = self.line_addr(a);
            let offset = a - la;
            let chunk = (self.cfg.line_bytes as u64 - offset).min(remaining);
            match self.find_way(la) {
                Some(idx) => {
                    if !self.line_bits_all(idx, offset, chunk) {
                        return false;
                    }
                }
                None => {
                    if !self.meta_fill {
                        return false;
                    }
                }
            }
            a = a.wrapping_add(chunk);
            remaining -= chunk;
        }
        true
    }

    /// Sets the metadata bits of `[addr, addr+size)` on resident lines to
    /// `value` (non-resident bytes are untouched: the cache has forgotten
    /// them). Same wrapping byte-count contract as [`Cache::meta_any`].
    pub fn meta_set(&mut self, addr: u64, size: u64, value: bool) {
        let line_bytes = self.cfg.line_bytes as u64;
        let mut a = addr;
        let mut remaining = size;
        while remaining > 0 {
            let la = self.line_addr(a);
            let offset = a - la;
            let chunk = (line_bytes - offset).min(remaining);
            if let Some(idx) = self.find_way(la) {
                self.line_bits_set(idx, offset, chunk, value);
            }
            a = a.wrapping_add(chunk);
            remaining -= chunk;
        }
    }

    /// Is any metadata bit of line `idx`'s bytes `[offset, offset+count)`
    /// set? One masked test per touched word.
    #[inline]
    fn line_bits_any(&self, idx: usize, offset: u64, count: u64) -> bool {
        let base = idx * self.words_per_line;
        let mut word = (offset / 64) as usize;
        let mut bit = offset % 64;
        let mut remaining = count;
        while remaining > 0 {
            let n = (64 - bit).min(remaining);
            if self.meta[base + word] & range_mask(bit, n) != 0 {
                return true;
            }
            word += 1;
            bit = 0;
            remaining -= n;
        }
        false
    }

    /// Are all metadata bits of line `idx`'s bytes `[offset,
    /// offset+count)` set?
    #[inline]
    fn line_bits_all(&self, idx: usize, offset: u64, count: u64) -> bool {
        let base = idx * self.words_per_line;
        let mut word = (offset / 64) as usize;
        let mut bit = offset % 64;
        let mut remaining = count;
        while remaining > 0 {
            let n = (64 - bit).min(remaining);
            let mask = range_mask(bit, n);
            if self.meta[base + word] & mask != mask {
                return false;
            }
            word += 1;
            bit = 0;
            remaining -= n;
        }
        true
    }

    /// Sets line `idx`'s metadata bits for bytes `[offset, offset+count)`
    /// to `value` with one masked store per touched word.
    #[inline]
    fn line_bits_set(&mut self, idx: usize, offset: u64, count: u64, value: bool) {
        let base = idx * self.words_per_line;
        let mut word = (offset / 64) as usize;
        let mut bit = offset % 64;
        let mut remaining = count;
        while remaining > 0 {
            let n = (64 - bit).min(remaining);
            let mask = range_mask(bit, n);
            if value {
                self.meta[base + word] |= mask;
            } else {
                self.meta[base + word] &= !mask;
            }
            word += 1;
            bit = 0;
            remaining -= n;
        }
    }

    /// The adversary-visible tag state: for each set, the resident line
    /// addresses ordered by recency (a FLUSH+RELOAD/PRIME+PROBE-grade
    /// observation). Allocates; the run loop uses
    /// [`Cache::tag_observation_into`] with arena-owned buffers.
    pub fn tag_observation(&self) -> Vec<u64> {
        let mut obs = Vec::with_capacity(self.cfg.sets() * (self.cfg.ways + 1));
        let mut scratch = Vec::with_capacity(self.cfg.ways);
        self.tag_observation_into(&mut obs, &mut scratch);
        obs
    }

    /// Appends the tag observation to `out`, sorting each set's resident
    /// ways in `scratch` (both caller-provided so the per-run hot path
    /// does not allocate).
    pub fn tag_observation_into(&self, out: &mut Vec<u64>, scratch: &mut Vec<(u64, u64)>) {
        out.reserve(self.cfg.sets() * (self.cfg.ways + 1));
        for (i, set_tags) in self.tags.chunks_exact(self.cfg.ways).enumerate() {
            let base = i * self.cfg.ways;
            scratch.clear();
            scratch.extend(
                set_tags
                    .iter()
                    .enumerate()
                    .filter(|&(_, &t)| t != INVALID_TAG)
                    .map(|(w, &t)| (self.lru[base + w], t)),
            );
            scratch.sort_unstable();
            out.push(i as u64);
            out.extend(scratch.iter().map(|&(_, t)| t));
        }
    }

    /// Hit rate so far (1.0 if no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache line of the boxed-`bool` oracle: tag plus per-byte metadata.
#[derive(Clone, Debug)]
struct BoolLine {
    /// Line-aligned address (`addr & !(line_bytes-1)`), or `None` if
    /// invalid.
    tag: Option<u64>,
    /// LRU timestamp.
    lru: u64,
    /// Per-byte metadata (ProtISA protection bits / SPT shadow bits).
    meta: Box<[bool]>,
}

/// The original `Vec<Line>` cache with heap `Box<[bool]>` per-byte
/// metadata, retained as the differential-test oracle for the flat
/// word-level [`Cache`] (`tests/cache_flat_equiv.rs`). Not used on any
/// simulation path.
#[derive(Clone, Debug)]
pub struct BoolMetaCache {
    cfg: CacheConfig,
    /// All lines in one contiguous allocation: way `w` of set `s` lives
    /// at index `s * ways + w`.
    lines: Vec<BoolLine>,
    /// Metadata value for bytes of a newly filled line.
    meta_fill: bool,
    clock: u64,
    /// Hit counter.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

impl BoolMetaCache {
    /// Creates an empty oracle cache (same contract as [`Cache::new`]).
    pub fn new(cfg: CacheConfig, meta_fill: bool) -> BoolMetaCache {
        let lines = (0..cfg.sets() * cfg.ways)
            .map(|_| BoolLine {
                tag: None,
                lru: 0,
                meta: vec![meta_fill; cfg.line_bytes].into_boxed_slice(),
            })
            .collect();
        BoolMetaCache {
            cfg,
            lines,
            meta_fill,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The ways of set `idx`, in way order.
    fn set(&self, idx: usize) -> &[BoolLine] {
        let base = idx * self.cfg.ways;
        &self.lines[base..base + self.cfg.ways]
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) % self.cfg.sets() as u64) as usize
    }

    /// Residency probe (no LRU update, no allocation).
    pub fn probe(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        self.set(self.set_index(addr))
            .iter()
            .any(|l| l.tag == Some(la))
    }

    /// Accesses (and allocates on miss) the line containing `addr`,
    /// updating LRU (same contract as [`Cache::access`]).
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.clock += 1;
        let la = self.line_addr(addr);
        let set_idx = self.set_index(addr);
        let clock = self.clock;
        let meta_fill = self.meta_fill;
        let base = set_idx * self.cfg.ways;
        let set = &mut self.lines[base..base + self.cfg.ways];
        if let Some(line) = set.iter_mut().find(|l| l.tag == Some(la)) {
            line.lru = clock;
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }
        self.misses += 1;
        // Victim: invalid way, else LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|l| (l.tag.is_some(), l.lru))
            .expect("cache set has ways");
        let evicted = victim.tag.take();
        victim.tag = Some(la);
        victim.lru = clock;
        victim.meta.fill(meta_fill);
        AccessResult {
            hit: false,
            evicted,
        }
    }

    /// Invalidates the line containing `addr`, dropping its metadata.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        let set_idx = self.set_index(addr);
        let meta_fill = self.meta_fill;
        let base = set_idx * self.cfg.ways;
        for line in &mut self.lines[base..base + self.cfg.ways] {
            if line.tag == Some(la) {
                line.tag = None;
                line.meta.fill(meta_fill);
                return true;
            }
        }
        false
    }

    /// ORs the metadata bits of `[addr, addr+size)` (non-resident bytes
    /// contribute `meta_fill`).
    pub fn meta_any(&self, addr: u64, size: u64) -> bool {
        self.meta_fold(addr, size, false, true, |acc, b| acc | b)
    }

    /// ANDs the metadata bits of `[addr, addr+size)` (non-resident bytes
    /// contribute `meta_fill`).
    pub fn meta_all(&self, addr: u64, size: u64) -> bool {
        self.meta_fold(addr, size, true, false, |acc, b| acc & b)
    }

    /// Folds `f` over the `size` metadata bits starting at `addr`, with
    /// the wrapping byte-count contract documented on
    /// [`Cache::meta_any`]. A non-resident chunk's contribution is a
    /// *single* fold of `meta_fill` (OR and AND are idempotent, so
    /// folding it once per byte — as the original code did — computes
    /// the same value for `line_bytes`× the work), and the walk stops
    /// early once the accumulator reaches `saturated` (a value `f` can
    /// never leave).
    fn meta_fold(
        &self,
        addr: u64,
        size: u64,
        init: bool,
        saturated: bool,
        f: impl Fn(bool, bool) -> bool,
    ) -> bool {
        let mut acc = init;
        let mut a = addr;
        let mut remaining = size;
        while remaining > 0 {
            if acc == saturated {
                return acc;
            }
            let la = self.line_addr(a);
            let offset = a - la;
            let chunk = (self.cfg.line_bytes as u64 - offset).min(remaining);
            let set = self.set(self.set_index(a));
            match set.iter().find(|l| l.tag == Some(la)) {
                Some(line) => {
                    for i in 0..chunk {
                        acc = f(acc, line.meta[(offset + i) as usize]);
                    }
                }
                None => acc = f(acc, self.meta_fill),
            }
            a = a.wrapping_add(chunk);
            remaining -= chunk;
        }
        acc
    }

    /// Sets the metadata bits of `[addr, addr+size)` on resident lines
    /// (same contract as [`Cache::meta_set`]).
    pub fn meta_set(&mut self, addr: u64, size: u64, value: bool) {
        let line_bytes = self.cfg.line_bytes as u64;
        let mut a = addr;
        let mut remaining = size;
        while remaining > 0 {
            let la = self.line_addr(a);
            let offset = a - la;
            let chunk = (line_bytes - offset).min(remaining);
            let set_idx = self.set_index(a);
            let base = set_idx * self.cfg.ways;
            if let Some(line) = self.lines[base..base + self.cfg.ways]
                .iter_mut()
                .find(|l| l.tag == Some(la))
            {
                for i in 0..chunk {
                    line.meta[(offset + i) as usize] = value;
                }
            }
            a = a.wrapping_add(chunk);
            remaining -= chunk;
        }
    }

    /// The adversary-visible tag state (same contract as
    /// [`Cache::tag_observation`]).
    pub fn tag_observation(&self) -> Vec<u64> {
        let mut obs = Vec::with_capacity(self.cfg.sets() * (self.cfg.ways + 1));
        let mut resident: Vec<(u64, u64)> = Vec::with_capacity(self.cfg.ways);
        for (i, set) in self.lines.chunks_exact(self.cfg.ways).enumerate() {
            resident.clear();
            resident.extend(set.iter().filter_map(|l| l.tag.map(|t| (l.lru, t))));
            resident.sort_unstable();
            obs.push(i as u64);
            obs.extend(resident.iter().map(|&(_, t)| t));
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(
            CacheConfig {
                size_bytes: 256,
                ways: 2,
                line_bytes: 64,
                latency: 1,
            },
            true,
        )
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x40).hit);
        assert!(c.access(0x40).hit);
        assert!(c.access(0x7f).hit); // same line
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny(); // 2 sets, 2 ways
                            // Three lines mapping to set 0 (line addrs multiples of 128).
        c.access(0x000);
        c.access(0x080);
        c.access(0x000); // touch to make 0x080 LRU
        let r = c.access(0x100);
        assert_eq!(r.evicted, Some(0x080));
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
    }

    #[test]
    fn meta_bits_lifecycle() {
        let mut c = tiny();
        // Not resident: every byte reads as meta_fill (protected).
        assert!(c.meta_any(0x40, 8));
        c.access(0x40);
        assert!(c.meta_any(0x40, 8)); // fill default = protected
        c.meta_set(0x40, 8, false);
        assert!(!c.meta_any(0x40, 8));
        assert!(c.meta_any(0x40, 9)); // 9th byte still protected
                                      // Eviction forgets the unprotection.
        c.access(0x0c0);
        c.access(0x140); // evicts 0x40 (LRU)
        assert!(!c.probe(0x40));
        assert!(c.meta_any(0x40, 8));
    }

    #[test]
    fn meta_all_vs_any() {
        let mut c = tiny();
        c.access(0x00);
        c.meta_set(0x00, 4, false);
        assert!(!c.meta_all(0x00, 8)); // half unprotected
        assert!(c.meta_any(0x00, 8));
        assert!(!c.meta_any(0x00, 4));
        assert!(c.meta_all(0x04, 4));
    }

    #[test]
    fn invalidate_drops_meta() {
        let mut c = tiny();
        c.access(0x40);
        c.meta_set(0x40, 64, false);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        assert!(c.meta_any(0x40, 1));
        assert!(!c.invalidate(0x40));
    }

    #[test]
    fn tag_observation_reflects_contents() {
        let mut a = tiny();
        let mut b = tiny();
        a.access(0x000);
        b.access(0x080);
        assert_ne!(a.tag_observation(), b.tag_observation());
        let mut c = tiny();
        c.access(0x000);
        assert_eq!(a.tag_observation(), c.tag_observation());
    }

    #[test]
    fn meta_ops_near_u64_max_do_not_overflow() {
        // Regression: `line_end = line_addr + line_bytes` overflowed for
        // addresses on the last line of the address space (panic under
        // debug overflow checks). The addresses are fuzzer-reachable.
        let mut c = tiny();
        let addr = u64::MAX - 3;
        c.access(addr);
        assert!(c.meta_any(addr, 4));
        c.meta_set(addr, 4, false);
        assert!(!c.meta_any(addr, 4));
        assert!(!c.meta_all(u64::MAX, 1));
    }

    #[test]
    fn meta_ops_wrapping_range_visits_size_bytes() {
        // Regression: a range wrapping past u64::MAX must visit exactly
        // `size` bytes (through 0), not degenerate into a ~2^64-byte
        // walk. 8 bytes starting at MAX-3: 4 on the last line, 4 on line
        // 0.
        let mut c = tiny();
        let addr = u64::MAX - 3;
        c.access(addr);
        c.access(0);
        c.meta_set(addr, 8, false);
        assert!(!c.meta_any(addr, 8));
        assert!(!c.meta_any(0, 4));
        assert!(c.meta_any(0, 5)); // 5th byte of line 0 untouched
                                   // Unprotect only the wrapped-to half; the high half stays set.
        let mut c2 = tiny();
        c2.access(addr);
        c2.access(0);
        c2.meta_set(0, 4, false);
        assert!(c2.meta_any(addr, 8));
        assert!(!c2.meta_all(addr, 8));
    }

    #[test]
    fn meta_cross_line() {
        let mut c = tiny();
        c.access(0x78); // line 0x40
        c.access(0x80); // line 0x80
        c.meta_set(0x7c, 8, false); // spans both lines
        assert!(!c.meta_any(0x7c, 8));
    }

    #[test]
    fn range_mask_bounds() {
        assert_eq!(range_mask(0, 64), u64::MAX);
        assert_eq!(range_mask(0, 1), 1);
        assert_eq!(range_mask(63, 1), 1 << 63);
        assert_eq!(range_mask(4, 4), 0xf0);
    }

    #[test]
    fn scratch_observation_matches_allocating_path() {
        let mut c = tiny();
        for a in [0x000u64, 0x080, 0x040, 0x1c0, 0x000] {
            c.access(a);
        }
        let mut out = vec![0xdead]; // appended-to, not cleared
        let mut scratch = Vec::new();
        c.tag_observation_into(&mut out, &mut scratch);
        assert_eq!(out[0], 0xdead);
        assert_eq!(&out[1..], c.tag_observation().as_slice());
    }

    #[test]
    fn oracle_agrees_on_the_unit_scenarios() {
        // Spot-check the boxed-bool oracle against the flat cache on the
        // lifecycle scenario (the exhaustive version is the
        // `cache_flat_equiv` differential test).
        let cfg = CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        };
        let mut flat = Cache::new(cfg, true);
        let mut oracle = BoolMetaCache::new(cfg, true);
        for a in [0x40u64, 0x0c0, 0x140, u64::MAX - 3, 0x40] {
            assert_eq!(flat.access(a), oracle.access(a));
        }
        flat.meta_set(u64::MAX - 3, 8, false);
        oracle.meta_set(u64::MAX - 3, 8, false);
        for (addr, size) in [(u64::MAX - 3, 8), (0x40, 9), (0, 4)] {
            assert_eq!(flat.meta_any(addr, size), oracle.meta_any(addr, size));
            assert_eq!(flat.meta_all(addr, size), oracle.meta_all(addr, size));
        }
        assert_eq!(flat.tag_observation(), oracle.tag_observation());
        assert_eq!(flat.invalidate(0x140), oracle.invalidate(0x140));
        assert_eq!(flat.tag_observation(), oracle.tag_observation());
        assert_eq!((flat.hits, flat.misses), (oracle.hits, oracle.misses));
    }
}
