//! Branch prediction: a TAGE-lite direction predictor, a branch target
//! buffer, and a return stack buffer (paper Tab. III: 4K-entry BTB,
//! 16-entry RSB, TAGE).

/// A tagged geometric-history direction predictor ("TAGE-lite"): a
/// bimodal base table plus three tagged tables with geometrically
/// increasing history lengths (4/16/64 bits).
///
/// # Examples
///
/// ```
/// use protean_sim::TagePredictor;
///
/// let mut p = TagePredictor::new();
/// let pc = 0x400100;
/// for _ in 0..64 {
///     let pred = p.predict(pc);
///     p.update(pc, pred, true);
/// }
/// assert!(p.predict(pc)); // learned always-taken
/// ```
#[derive(Clone, Debug)]
pub struct TagePredictor {
    /// Bimodal base: 2-bit counters.
    base: Vec<u8>,
    /// Tagged components: (tag, 3-bit counter, useful bit).
    tables: Vec<Vec<TageEntry>>,
    history: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct TageEntry {
    tag: u16,
    ctr: i8,
    useful: bool,
}

const BASE_BITS: usize = 12;
const TABLE_BITS: usize = 10;
const HIST_LENGTHS: [u32; 3] = [4, 16, 64];

impl TagePredictor {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new() -> TagePredictor {
        TagePredictor {
            base: vec![1; 1 << BASE_BITS],
            tables: (0..HIST_LENGTHS.len())
                .map(|_| vec![TageEntry::default(); 1 << TABLE_BITS])
                .collect(),
            history: 0,
        }
    }

    fn fold_history(&self, bits: u32) -> u64 {
        let h = if bits >= 64 {
            self.history
        } else {
            self.history & ((1u64 << bits) - 1)
        };
        // Fold to TABLE_BITS.
        let mut folded = 0u64;
        let mut rest = h;
        while rest != 0 {
            folded ^= rest & ((1 << TABLE_BITS) - 1);
            rest >>= TABLE_BITS;
        }
        folded
    }

    fn index(&self, pc: u64, table: usize) -> usize {
        let folded = self.fold_history(HIST_LENGTHS[table]);
        (((pc >> 2) ^ folded ^ (pc >> 13)) & ((1 << TABLE_BITS) - 1)) as usize
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let folded = self.fold_history(HIST_LENGTHS[table]);
        ((((pc >> 2) >> TABLE_BITS) ^ folded.rotate_left(3) ^ pc) & 0xff) as u16 | 0x100
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << BASE_BITS) - 1)) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        // Longest matching tagged table wins.
        for table in (0..self.tables.len()).rev() {
            let e = &self.tables[table][self.index(pc, table)];
            if e.tag == self.tag(pc, table) {
                return e.ctr >= 0;
            }
        }
        self.base[self.base_index(pc)] >= 2
    }

    /// Updates the predictor with the resolved direction and shifts the
    /// global history.
    pub fn update(&mut self, pc: u64, predicted: bool, taken: bool) {
        // Find the provider.
        let mut provider = None;
        for table in (0..self.tables.len()).rev() {
            let idx = self.index(pc, table);
            if self.tables[table][idx].tag == self.tag(pc, table) {
                provider = Some((table, idx));
                break;
            }
        }
        match provider {
            Some((table, idx)) => {
                let e = &mut self.tables[table][idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                e.useful |= predicted == taken;
            }
            None => {
                let bi = self.base_index(pc);
                let b = &mut self.base[bi];
                *b = (*b as i8 + if taken { 1 } else { -1 }).clamp(0, 3) as u8;
            }
        }
        // On a misprediction, try to allocate in a longer table.
        if predicted != taken {
            let start = provider.map(|(t, _)| t + 1).unwrap_or(0);
            for table in start..self.tables.len() {
                let idx = self.index(pc, table);
                let tag = self.tag(pc, table);
                let e = &mut self.tables[table][idx];
                if !e.useful {
                    *e = TageEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        useful: false,
                    };
                    break;
                }
                e.useful = false; // age
            }
        }
        self.history = (self.history << 1) | taken as u64;
    }

    /// Snapshot of the global history (for squash recovery).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restores the global history (on squash).
    pub fn restore_history(&mut self, history: u64) {
        self.history = history;
    }
}

impl Default for TagePredictor {
    fn default() -> TagePredictor {
        TagePredictor::new()
    }
}

/// A direct-mapped, tagged branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
    mask: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Btb {
        let n = entries.next_power_of_two();
        Btb {
            entries: vec![None; n],
            mask: n as u64 - 1,
        }
    }

    /// The predicted target of the branch at `pc`, if known.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[((pc >> 2) & self.mask) as usize] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records a resolved branch target.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.entries[((pc >> 2) & self.mask) as usize] = Some((pc, target));
    }
}

/// A return stack buffer (circular, drops on overflow like real RSBs —
/// the Retbleed-style underflow behaviour is faithfully mispredictive).
#[derive(Clone, Debug)]
pub struct Rsb {
    stack: Vec<u64>,
    capacity: usize,
}

impl Rsb {
    /// Creates an RSB holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Rsb {
        Rsb {
            stack: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Pushes a return address (on `call`); drops the oldest on overflow.
    pub fn push(&mut self, ret: u64) {
        if self.stack.len() == self.capacity {
            self.stack.remove(0);
        }
        self.stack.push(ret);
    }

    /// Pops a predicted return target (on `ret`).
    pub fn pop(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Snapshot for squash recovery.
    pub fn snapshot(&self) -> Vec<u64> {
        self.stack.clone()
    }

    /// Restores a snapshot.
    pub fn restore(&mut self, snapshot: Vec<u64>) {
        self.stack = snapshot;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tage_learns_static_bias() {
        let mut p = TagePredictor::new();
        for i in 0..200 {
            let pred = p.predict(0x1000);
            p.update(0x1000, pred, true);
            let pred = p.predict(0x2000);
            p.update(0x2000, pred, false);
            let _ = i;
        }
        assert!(p.predict(0x1000));
        assert!(!p.predict(0x2000));
    }

    #[test]
    fn tage_learns_pattern_with_history() {
        // Alternating T/N pattern: the bimodal table alone cannot learn
        // this, but history-indexed tables can.
        let mut p = TagePredictor::new();
        let pc = 0x4444;
        let mut taken = false;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000 {
            taken = !taken;
            let pred = p.predict(pc);
            if i > 1000 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            p.update(pc, pred, taken);
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "TAGE should learn an alternating pattern, got {correct}/{total}"
        );
    }

    #[test]
    fn history_snapshot_restore() {
        let mut p = TagePredictor::new();
        p.update(0x10, false, true);
        let h = p.history();
        p.update(0x10, false, false);
        assert_ne!(p.history(), h);
        p.restore_history(h);
        assert_eq!(p.history(), h);
    }

    #[test]
    fn btb_tagged_lookup() {
        let mut btb = Btb::new(64);
        assert_eq!(btb.lookup(0x400000), None);
        btb.update(0x400000, 0x400100);
        assert_eq!(btb.lookup(0x400000), Some(0x400100));
        // Aliasing pc with a different tag misses.
        let alias = 0x400000 + 64 * 4;
        assert_eq!(btb.lookup(alias), None);
    }

    #[test]
    fn rsb_lifo_and_overflow() {
        let mut rsb = Rsb::new(2);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3); // drops 1
        assert_eq!(rsb.pop(), Some(3));
        assert_eq!(rsb.pop(), Some(2));
        assert_eq!(rsb.pop(), None);
    }

    #[test]
    fn rsb_snapshot_roundtrip() {
        let mut rsb = Rsb::new(4);
        rsb.push(7);
        let snap = rsb.snapshot();
        rsb.pop();
        rsb.restore(snap);
        assert_eq!(rsb.pop(), Some(7));
    }
}
