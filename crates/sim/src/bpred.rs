//! Branch prediction: a TAGE-lite direction predictor, a branch target
//! buffer, and a return stack buffer (paper Tab. III: 4K-entry BTB,
//! 16-entry RSB, TAGE).

use std::sync::Arc;

/// A tagged geometric-history direction predictor ("TAGE-lite"): a
/// bimodal base table plus three tagged tables with geometrically
/// increasing history lengths (4/16/64 bits).
///
/// # Examples
///
/// ```
/// use protean_sim::TagePredictor;
///
/// let mut p = TagePredictor::new();
/// let pc = 0x400100;
/// for _ in 0..64 {
///     let pred = p.predict(pc);
///     p.update(pc, pred, true);
/// }
/// assert!(p.predict(pc)); // learned always-taken
/// ```
#[derive(Clone, Debug)]
pub struct TagePredictor {
    /// Bimodal base: 2-bit counters.
    base: Vec<u8>,
    /// Tagged components, flattened: the entry at index `i` of table `t`
    /// lives at `(t << TABLE_BITS) | i` — one contiguous allocation
    /// instead of a `Vec<Vec<_>>` pointer chase per table.
    entries: Vec<TageEntry>,
    history: u64,
    /// Per-table folded-history registers, maintained incrementally on
    /// each history shift (Seznec & Michaud's folded histories). The
    /// invariant `folds[t] == fold_reference(history, HIST_LENGTHS[t])`
    /// holds at every point, so `predict`/`update` index their tables
    /// without re-folding the 64-bit history.
    folds: [u64; N_TABLES],
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TageEntry {
    tag: u16,
    ctr: i8,
    useful: bool,
}

const BASE_BITS: usize = 12;
const TABLE_BITS: usize = 10;
const TABLE_MASK: u64 = (1 << TABLE_BITS) - 1;
const N_TABLES: usize = HIST_LENGTHS.len();

/// The geometric history lengths of the tagged tables, in table order
/// (public so the fold-equivalence property test can sweep all three).
pub const HIST_LENGTHS: [u32; 3] = [4, 16, 64];

impl TagePredictor {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new() -> TagePredictor {
        TagePredictor {
            base: vec![1; 1 << BASE_BITS],
            entries: vec![TageEntry::default(); N_TABLES << TABLE_BITS],
            history: 0,
            folds: [0; N_TABLES],
        }
    }

    /// Reference history fold (the original `fold_history`): mask the
    /// history to its low `bits`, then XOR `TABLE_BITS`-wide chunks.
    /// Retained as the oracle the incremental registers are
    /// differentially tested against (`tests/tage_fold_equiv.rs`); the
    /// hot paths never call it.
    pub fn fold_reference(history: u64, bits: u32) -> u64 {
        let h = if bits >= 64 {
            history
        } else {
            history & ((1u64 << bits) - 1)
        };
        // Fold to TABLE_BITS.
        let mut folded = 0u64;
        let mut rest = h;
        while rest != 0 {
            folded ^= rest & TABLE_MASK;
            rest >>= TABLE_BITS;
        }
        folded
    }

    /// The current per-table folded-history registers (introspection for
    /// the fold-equivalence tests).
    pub fn folds(&self) -> [u64; N_TABLES] {
        self.folds
    }

    /// Shifts direction bit `taken` into the global history, updating
    /// every folded register incrementally.
    ///
    /// With `W = TABLE_BITS`, the fold of an `len`-bit history is
    /// `XOR_i bit_i << (i mod W)`. Shifting moves every bit up one
    /// position and drops bit `len-1`, so the new fold is the old fold
    /// rotated left by one within `W` bits, XOR the incoming bit at
    /// position 0, XOR the outgoing bit at position `len mod W` (where
    /// rotation parked it). O(1) per table versus the O(len/W) re-fold.
    #[inline]
    fn shift_history(&mut self, taken: bool) {
        let b = taken as u64;
        for (t, &len) in HIST_LENGTHS.iter().enumerate() {
            let out_bit = (self.history >> (len - 1)) & 1;
            let f = self.folds[t];
            let rotated = ((f << 1) | (f >> (TABLE_BITS - 1))) & TABLE_MASK;
            self.folds[t] = rotated ^ b ^ (out_bit << (len as usize % TABLE_BITS));
        }
        self.history = (self.history << 1) | b;
    }

    /// Flat index of entry `index` of table `table`.
    #[inline]
    fn slot(table: usize, index: usize) -> usize {
        (table << TABLE_BITS) | index
    }

    fn index(&self, pc: u64, table: usize) -> usize {
        (((pc >> 2) ^ self.folds[table] ^ (pc >> 13)) & TABLE_MASK) as usize
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        ((((pc >> 2) >> TABLE_BITS) ^ self.folds[table].rotate_left(3) ^ pc) & 0xff) as u16 | 0x100
    }

    fn base_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << BASE_BITS) - 1)) as usize
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        // Longest matching tagged table wins.
        for table in (0..N_TABLES).rev() {
            let e = &self.entries[Self::slot(table, self.index(pc, table))];
            if e.tag == self.tag(pc, table) {
                return e.ctr >= 0;
            }
        }
        self.base[self.base_index(pc)] >= 2
    }

    /// Updates the predictor with the resolved direction and shifts the
    /// global history.
    pub fn update(&mut self, pc: u64, predicted: bool, taken: bool) {
        // Find the provider.
        let mut provider = None;
        for table in (0..N_TABLES).rev() {
            let idx = self.index(pc, table);
            if self.entries[Self::slot(table, idx)].tag == self.tag(pc, table) {
                provider = Some((table, idx));
                break;
            }
        }
        match provider {
            Some((table, idx)) => {
                let e = &mut self.entries[Self::slot(table, idx)];
                // Credit the useful bit from the *provider's own*
                // direction, not the overall prediction: the provider may
                // have been overridden (or simply wrong) while the final
                // prediction was right, and pinning it useful would
                // permanently block allocation of longer-history entries.
                let provider_pred = e.ctr >= 0;
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                e.useful |= provider_pred == taken;
            }
            None => {
                let bi = self.base_index(pc);
                let b = &mut self.base[bi];
                *b = (*b as i8 + if taken { 1 } else { -1 }).clamp(0, 3) as u8;
            }
        }
        // On a misprediction, try to allocate in a longer table.
        if predicted != taken {
            let start = provider.map(|(t, _)| t + 1).unwrap_or(0);
            for table in start..N_TABLES {
                let idx = self.index(pc, table);
                let tag = self.tag(pc, table);
                let e = &mut self.entries[Self::slot(table, idx)];
                if !e.useful {
                    *e = TageEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        useful: false,
                    };
                    break;
                }
                e.useful = false; // age
            }
        }
        self.shift_history(taken);
    }

    /// Restores the freshly-constructed state without reallocating the
    /// tables (the `Core::reset` arena path).
    pub fn reset(&mut self) {
        self.base.fill(1);
        self.entries.fill(TageEntry::default());
        self.history = 0;
        self.folds = [0; N_TABLES];
    }

    /// Speculatively shifts a predicted (or squash-recovered actual)
    /// direction into the global history at fetch time.
    ///
    /// This is the *same* folding [`TagePredictor::update`] applies at
    /// commit — exposed as one API so the front end cannot desync from
    /// the predictor's own history update by hand-rolling the shift.
    /// `pc` is accepted for symmetry with `predict`/`update` (and for
    /// future path-based histories); the current fold ignores it.
    pub fn speculate(&mut self, _pc: u64, taken: bool) {
        self.shift_history(taken);
    }

    /// Snapshot of the global history (for squash recovery).
    pub fn history(&self) -> u64 {
        self.history
    }

    /// Restores the global history (on squash), recomputing the folded
    /// registers from the reference fold (squashes are rare next to
    /// predicts, so the full re-fold lives here and only here).
    pub fn restore_history(&mut self, history: u64) {
        self.history = history;
        for (t, &len) in HIST_LENGTHS.iter().enumerate() {
            self.folds[t] = Self::fold_reference(history, len);
        }
    }
}

impl Default for TagePredictor {
    fn default() -> TagePredictor {
        TagePredictor::new()
    }
}

/// A direct-mapped, tagged branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc, target)
    mask: u64,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Btb {
        let n = entries.next_power_of_two();
        Btb {
            entries: vec![None; n],
            mask: n as u64 - 1,
        }
    }

    /// The predicted target of the branch at `pc`, if known.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[((pc >> 2) & self.mask) as usize] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records a resolved branch target.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.entries[((pc >> 2) & self.mask) as usize] = Some((pc, target));
    }

    /// Empties the BTB in place (the `Core::reset` arena path).
    pub fn reset(&mut self) {
        self.entries.fill(None);
    }
}

/// A return stack buffer (circular, drops on overflow like real RSBs —
/// the Retbleed-style underflow behaviour is faithfully mispredictive).
///
/// Implemented as a true ring buffer: overflow overwrites the oldest
/// entry in O(1) (`push` sits on the fetch hot path, once per `call`).
#[derive(Clone, Debug)]
pub struct Rsb {
    buf: Vec<u64>,
    /// Index of the oldest live entry.
    start: usize,
    /// Number of live entries (`<= capacity`).
    len: usize,
    capacity: usize,
    /// Interned snapshot of the current contents, shared by every
    /// in-flight µop fetched until the next push/pop/restore. Fetch
    /// takes one snapshot per µop; straight-line code between calls
    /// and returns reuses this `Arc` instead of cloning a `Vec`.
    cached: Option<Arc<[u64]>>,
}

impl Rsb {
    /// Creates an RSB holding up to `capacity` return addresses.
    pub fn new(capacity: usize) -> Rsb {
        Rsb {
            buf: vec![0; capacity],
            start: 0,
            len: 0,
            capacity,
            cached: None,
        }
    }

    /// Pushes a return address (on `call`); drops the oldest on overflow.
    pub fn push(&mut self, ret: u64) {
        if self.capacity == 0 {
            return;
        }
        self.cached = None;
        if self.len == self.capacity {
            // Overwrite the oldest: the slot at `start` becomes the
            // newest and the next-oldest becomes the new start.
            self.buf[self.start] = ret;
            self.start = (self.start + 1) % self.capacity;
        } else {
            self.buf[(self.start + self.len) % self.capacity] = ret;
            self.len += 1;
        }
    }

    /// Pops a predicted return target (on `ret`).
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.cached = None;
        self.len -= 1;
        Some(self.buf[(self.start + self.len) % self.capacity])
    }

    /// Snapshot for squash recovery: live entries, oldest → newest.
    pub fn snapshot(&self) -> Vec<u64> {
        (0..self.len)
            .map(|i| self.buf[(self.start + i) % self.capacity])
            .collect()
    }

    /// Like [`Rsb::snapshot`], but interned: the returned `Arc` is
    /// cached and reused until the contents next change, so per-µop
    /// snapshotting on the fetch path is a refcount bump, not an
    /// allocation.
    pub fn snapshot_shared(&mut self) -> Arc<[u64]> {
        if let Some(s) = &self.cached {
            return Arc::clone(s);
        }
        let s: Arc<[u64]> = self.snapshot().into();
        self.cached = Some(Arc::clone(&s));
        s
    }

    /// Restores a snapshot (as produced by [`Rsb::snapshot`] or
    /// [`Rsb::snapshot_shared`]).
    pub fn restore(&mut self, snapshot: &[u64]) {
        debug_assert!(snapshot.len() <= self.capacity);
        self.cached = None;
        self.len = snapshot.len().min(self.capacity);
        self.start = 0;
        self.buf[..self.len].copy_from_slice(&snapshot[..self.len]);
    }

    /// Empties the RSB in place (the `Core::reset` arena path).
    pub fn reset(&mut self) {
        self.start = 0;
        self.len = 0;
        self.cached = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tage_learns_static_bias() {
        let mut p = TagePredictor::new();
        for i in 0..200 {
            let pred = p.predict(0x1000);
            p.update(0x1000, pred, true);
            let pred = p.predict(0x2000);
            p.update(0x2000, pred, false);
            let _ = i;
        }
        assert!(p.predict(0x1000));
        assert!(!p.predict(0x2000));
    }

    #[test]
    fn tage_learns_pattern_with_history() {
        // Alternating T/N pattern: the bimodal table alone cannot learn
        // this, but history-indexed tables can.
        let mut p = TagePredictor::new();
        let pc = 0x4444;
        let mut taken = false;
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000 {
            taken = !taken;
            let pred = p.predict(pc);
            if i > 1000 {
                total += 1;
                if pred == taken {
                    correct += 1;
                }
            }
            p.update(pc, pred, taken);
        }
        assert!(
            correct as f64 / total as f64 > 0.9,
            "TAGE should learn an alternating pattern, got {correct}/{total}"
        );
    }

    #[test]
    fn history_snapshot_restore() {
        let mut p = TagePredictor::new();
        p.update(0x10, false, true);
        let h = p.history();
        p.update(0x10, false, false);
        assert_ne!(p.history(), h);
        p.restore_history(h);
        assert_eq!(p.history(), h);
    }

    #[test]
    fn speculate_matches_resolve_time_history_folding() {
        // The fetch stage folds a *predicted* direction into the global
        // history speculatively; commit folds the *actual* direction via
        // `update`. For the same direction the two must produce the same
        // history word — otherwise squash recovery (restore + re-fold)
        // would desync fetch-time table indexing from the trained state.
        let mut spec = TagePredictor::new();
        let mut resolved = TagePredictor::new();
        let pcs = [0x40_0100u64, 0x40_0204, 0x40_030c];
        for i in 0..500u64 {
            let pc = pcs[(i % 3) as usize];
            let taken = (i * 7) % 3 == 0;
            // Fetch-side: speculative fold only.
            spec.speculate(pc, taken);
            // Commit-side: full update (counters train too).
            let pred = resolved.predict(pc);
            resolved.update(pc, pred, taken);
            assert_eq!(
                spec.history(),
                resolved.history(),
                "histories diverged at step {i}"
            );
        }
        // Mispredict recovery: restore a snapshot, re-fold the actual
        // direction with `speculate` — same word `update` would leave.
        let snap = spec.history();
        spec.speculate(0x40_0100, true);
        spec.restore_history(snap);
        spec.speculate(0x40_0100, false);
        assert_eq!(spec.history(), snap << 1);
    }

    #[test]
    fn btb_tagged_lookup() {
        let mut btb = Btb::new(64);
        assert_eq!(btb.lookup(0x400000), None);
        btb.update(0x400000, 0x400100);
        assert_eq!(btb.lookup(0x400000), Some(0x400100));
        // Aliasing pc with a different tag misses.
        let alias = 0x400000 + 64 * 4;
        assert_eq!(btb.lookup(alias), None);
    }

    #[test]
    fn rsb_lifo_and_overflow() {
        let mut rsb = Rsb::new(2);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3); // drops 1
        assert_eq!(rsb.pop(), Some(3));
        assert_eq!(rsb.pop(), Some(2));
        assert_eq!(rsb.pop(), None);
    }

    #[test]
    fn tage_useful_credits_provider_direction_not_overall() {
        // Regression: the useful bit must reflect whether the *provider's
        // own counter* predicted correctly, not whether the overall
        // prediction was right. (The two differ when the global history
        // at update time selects a different provider than at predict
        // time, so the update-time provider can be credited for a
        // prediction it did not make.)
        let mut p = TagePredictor::new();
        let pc = 0x8888;
        // Table 0 starts at flat slot 0, so its entry `idx` is
        // `p.entries[idx]`.
        let idx = p.index(pc, 0);
        let tag = p.tag(pc, 0);
        // Seed a table-0 provider whose own counter says not-taken.
        p.entries[idx] = TageEntry {
            tag,
            ctr: -1,
            useful: false,
        };
        // Overall prediction `taken`, outcome taken: overall correct,
        // provider wrong.
        p.update(pc, true, true);
        assert!(
            !p.entries[idx].useful,
            "a provider whose own direction mispredicted must not be pinned useful"
        );
    }

    #[test]
    fn tage_allocation_proceeds_after_provider_mispredictions() {
        let mut p = TagePredictor::new();
        let pc = 0x8888;
        let idx = p.index(pc, 0);
        let tag = p.tag(pc, 0);
        p.entries[idx] = TageEntry {
            tag,
            ctr: -1,
            useful: false,
        };
        // Repeated provider mispredictions under correct overall
        // predictions: the pre-fix code pinned `useful` on the first.
        for _ in 0..4 {
            p.restore_history(0);
            p.entries[idx].ctr = -1;
            p.update(pc, true, true);
        }
        assert!(!p.entries[idx].useful);
        // An aliasing branch now occupies the slot (same index, other
        // tag). A base-provider misprediction must reclaim the slot at
        // table 0 immediately instead of being stuck aging a
        // falsely-useful entry into a longer table.
        p.entries[idx].tag = tag ^ 0x1;
        p.restore_history(0);
        p.update(pc, false, true);
        assert_eq!(
            p.entries[idx].tag, tag,
            "misprediction must allocate the non-useful table-0 slot"
        );
    }

    #[test]
    fn incremental_folds_track_reference_fold() {
        // The incremental folded registers must be bit-identical to the
        // reference fold of the masked history after every kind of
        // history mutation (the invariant `predict`/`update` indexing
        // relies on). Drives a deterministic but irregular bit stream
        // through speculate/update/restore and checks all three lengths.
        let mut p = TagePredictor::new();
        let check = |p: &TagePredictor, step: usize| {
            for (t, &len) in HIST_LENGTHS.iter().enumerate() {
                assert_eq!(
                    p.folds()[t],
                    TagePredictor::fold_reference(p.history(), len),
                    "fold register {t} (len {len}) diverged at step {step}"
                );
            }
        };
        check(&p, 0);
        let mut snap = (0, 0u64);
        for i in 1..=300usize {
            let taken = (i * i + i / 3) % 5 < 2;
            match i % 7 {
                0 => {
                    let pred = p.predict(0x40_0000 + (i as u64 * 4));
                    p.update(0x40_0000 + (i as u64 * 4), pred, taken);
                }
                3 => {
                    snap = (i, p.history());
                }
                5 => p.restore_history(snap.1),
                _ => p.speculate(0x1234, taken),
            }
            check(&p, i);
        }
        // All 64 bits of history populated: the len-64 register now
        // exercises the drop-out path on every shift.
        for i in 0..80usize {
            p.speculate(0, i % 3 == 0);
            check(&p, 1000 + i);
        }
        p.reset();
        check(&p, usize::MAX);
    }

    #[test]
    fn rsb_snapshot_roundtrip() {
        let mut rsb = Rsb::new(4);
        rsb.push(7);
        let snap = rsb.snapshot();
        rsb.pop();
        rsb.restore(&snap);
        assert_eq!(rsb.pop(), Some(7));
    }

    #[test]
    fn rsb_shared_snapshot_interns_until_mutation() {
        let mut rsb = Rsb::new(4);
        rsb.push(7);
        let a = rsb.snapshot_shared();
        let b = rsb.snapshot_shared();
        assert!(Arc::ptr_eq(&a, &b), "unchanged RSB must reuse the Arc");
        assert_eq!(&*a, &[7]);
        rsb.push(9);
        let c = rsb.snapshot_shared();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(&*c, &[7, 9]);
        rsb.restore(&a);
        assert_eq!(rsb.snapshot(), vec![7]);
        assert_eq!(rsb.pop(), Some(7));
    }

    #[test]
    fn rsb_wraps_around_many_times() {
        // Drive the ring through several full wraps and check drop-oldest
        // LIFO semantics and snapshot order (oldest → newest) throughout.
        let mut rsb = Rsb::new(3);
        for v in 1..=10 {
            rsb.push(v);
        }
        assert_eq!(rsb.snapshot(), vec![8, 9, 10]);
        assert_eq!(rsb.pop(), Some(10));
        // Push after a pop mid-ring: 8, 9, 11.
        rsb.push(11);
        assert_eq!(rsb.snapshot(), vec![8, 9, 11]);
        // Overflow again: drops 8.
        rsb.push(12);
        assert_eq!(rsb.snapshot(), vec![9, 11, 12]);
        assert_eq!(rsb.pop(), Some(12));
        assert_eq!(rsb.pop(), Some(11));
        assert_eq!(rsb.pop(), Some(9));
        assert_eq!(rsb.pop(), None);
        // Restore a partial snapshot into a wrapped ring.
        for v in 20..=25 {
            rsb.push(v);
        }
        rsb.restore(&[1, 2]);
        assert_eq!(rsb.pop(), Some(2));
        assert_eq!(rsb.pop(), Some(1));
        assert_eq!(rsb.pop(), None);
    }

    #[test]
    fn rsb_zero_capacity_is_inert() {
        let mut rsb = Rsb::new(0);
        rsb.push(1);
        assert_eq!(rsb.pop(), None);
        assert_eq!(rsb.snapshot(), Vec::<u64>::new());
        rsb.restore(&[]);
    }

    #[test]
    fn predictor_resets_to_fresh_state() {
        let mut p = TagePredictor::new();
        for _ in 0..100 {
            let pred = p.predict(0x1000);
            p.update(0x1000, pred, true);
        }
        assert!(p.predict(0x1000));
        p.reset();
        assert!(!p.predict(0x1000), "reset must forget learned bias");
        assert_eq!(p.history(), 0);

        let mut btb = Btb::new(16);
        btb.update(0x40, 0x80);
        btb.reset();
        assert_eq!(btb.lookup(0x40), None);

        let mut rsb = Rsb::new(2);
        rsb.push(5);
        rsb.reset();
        assert_eq!(rsb.pop(), None);
    }
}
