//! Hand-rolled wall-time section profiler for the pipeline's phases.
//!
//! Enabled by `PROTEAN_PROFILE=1` (anything but `0`); same pure-observer
//! discipline as the tracer (`crate::trace`): the profiler never feeds
//! back into simulation, and with it off the entire cost is one cached
//! boolean branch per tick — no `Instant` reads, no atomics.
//!
//! When on, each [`crate::pipeline::Core`] accumulates per-phase wall
//! time and call counts in a thread-local [`SectionTimes`] and flushes
//! into process-wide atomics at the end of every run ([`flush`]), so a
//! whole campaign (including parallel workers) folds into one table.
//! Bench binaries read [`totals`] and emit a schema-checked JSON
//! breakdown through `protean_sim::json` — the data behind the "which
//! phase paid for the speedup" tables in EXPERIMENTS.md.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The profiled pipeline phases, in tick order. `Execute` is carved out
/// of the issue stage (the execution units proper); `Issue` is the
/// scheduling/gating remainder. `FastForward` is the idle-cycle jump
/// machinery outside `tick`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Section {
    /// Completion drain + wakeup arbitration (`complete_and_wakeup`).
    Wakeup = 0,
    /// Store-data capture (`capture_store_data`).
    StoreData = 1,
    /// Branch resolution and squash (`resolve_branches`).
    Resolve = 2,
    /// In-order commit.
    Commit = 3,
    /// Issue-window scheduling and defense gating, minus execution.
    Issue = 4,
    /// Execution units (`execute_uop` and its load/store legs).
    Execute = 5,
    /// Rename/dispatch.
    Rename = 6,
    /// Fetch and branch prediction.
    Fetch = 7,
    /// Idle-cycle fast-forward (bulk blocked-cycle attribution).
    FastForward = 8,
    /// Cache tag probes and fills (`Cache::access` walks for timing),
    /// carved out of the stages that perform them (issue/commit/fetch).
    CacheAccess = 9,
    /// L1D metadata word ops (`meta_any`/`meta_all`/`meta_set`), carved
    /// out of the issue/commit stages.
    CacheMeta = 10,
    /// Branch-predictor work (TAGE predict/update/speculate/restore,
    /// BTB, RSB), carved out of the fetch/resolve/commit stages.
    Bpred = 11,
}

const N_SECTIONS: usize = 12;

const NAMES: [&str; N_SECTIONS] = [
    "wakeup",
    "store_data",
    "resolve",
    "commit",
    "issue",
    "execute",
    "rename",
    "fetch",
    "fast_forward",
    "cache_access",
    "cache_meta",
    "bpred",
];

/// Whether profiling is enabled (`PROTEAN_PROFILE`, read once).
pub fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("PROTEAN_PROFILE").is_ok_and(|v| v.trim() != "0"))
}

/// Per-core accumulator: nanoseconds and entry counts per section.
#[derive(Clone, Debug, Default)]
pub struct SectionTimes {
    nanos: [u64; N_SECTIONS],
    calls: [u64; N_SECTIONS],
}

impl SectionTimes {
    /// Charges the time since `t` to `s`; returns a fresh timestamp for
    /// the next section (one `Instant::now` per boundary).
    pub fn lap(&mut self, t: Instant, s: Section) -> Instant {
        let now = Instant::now();
        self.nanos[s as usize] += (now - t).as_nanos() as u64;
        self.calls[s as usize] += 1;
        now
    }

    /// As [`SectionTimes::lap`], minus `sub_nanos` already charged
    /// elsewhere (the issue stage subtracts the execution time its
    /// `execute_uop` calls booked to [`Section::Execute`]).
    pub fn lap_minus(&mut self, t: Instant, s: Section, sub_nanos: u64) -> Instant {
        let now = Instant::now();
        let span = (now - t).as_nanos() as u64;
        self.nanos[s as usize] += span.saturating_sub(sub_nanos);
        self.calls[s as usize] += 1;
        now
    }

    /// Charges an already-measured duration to `s`.
    pub fn add(&mut self, s: Section, d: Duration) {
        self.nanos[s as usize] += d.as_nanos() as u64;
        self.calls[s as usize] += 1;
    }

    /// As [`SectionTimes::add`], minus `sub_nanos` already charged
    /// elsewhere — the stage-level counterpart of
    /// [`SectionTimes::lap_minus`] for spans measured with an explicit
    /// duration (e.g. `Execute` deducting the component-model time its
    /// cache walks booked to [`Section::CacheAccess`]). Keeps sections
    /// disjoint so share-of-total stays meaningful.
    pub fn add_minus(&mut self, s: Section, d: Duration, sub_nanos: u64) {
        self.nanos[s as usize] += (d.as_nanos() as u64).saturating_sub(sub_nanos);
        self.calls[s as usize] += 1;
    }

    /// Nanoseconds accumulated for `s` so far.
    pub fn nanos_of(&self, s: Section) -> u64 {
        self.nanos[s as usize]
    }
}

static TOTAL_NANOS: [AtomicU64; N_SECTIONS] = [const { AtomicU64::new(0) }; N_SECTIONS];
static TOTAL_CALLS: [AtomicU64; N_SECTIONS] = [const { AtomicU64::new(0) }; N_SECTIONS];

/// Folds a core's accumulator into the process-wide totals and zeroes
/// it. Called at the end of every run; cheap relative to a run (one
/// relaxed RMW per section).
pub fn flush(local: &mut SectionTimes) {
    for i in 0..N_SECTIONS {
        if local.nanos[i] != 0 {
            TOTAL_NANOS[i].fetch_add(local.nanos[i], Ordering::Relaxed);
        }
        if local.calls[i] != 0 {
            TOTAL_CALLS[i].fetch_add(local.calls[i], Ordering::Relaxed);
        }
    }
    *local = SectionTimes::default();
}

/// Process-wide totals: `(section name, nanoseconds, calls)` per
/// section, in tick order.
pub fn totals() -> Vec<(&'static str, u64, u64)> {
    (0..N_SECTIONS)
        .map(|i| {
            (
                NAMES[i],
                TOTAL_NANOS[i].load(Ordering::Relaxed),
                TOTAL_CALLS[i].load(Ordering::Relaxed),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate_and_flush_folds() {
        let mut st = SectionTimes::default();
        let t = Instant::now();
        let t = st.lap(t, Section::Wakeup);
        st.lap_minus(t, Section::Issue, u64::MAX); // saturates to 0
        st.add(Section::Execute, Duration::from_nanos(42));
        assert_eq!(st.nanos_of(Section::Execute), 42);
        assert_eq!(st.nanos_of(Section::Issue), 0);
        assert_eq!(st.calls[Section::Issue as usize], 1);
        let before = totals();
        flush(&mut st);
        assert_eq!(st.nanos_of(Section::Execute), 0);
        let after = totals();
        let i = Section::Execute as usize;
        assert_eq!(after[i].1 - before[i].1, 42);
        assert!(after[i].2 > before[i].2);
        assert_eq!(after[i].0, "execute");
    }
}
