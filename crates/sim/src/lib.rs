//! # protean-sim
//!
//! A cycle-level, speculative, out-of-order CPU simulator — the gem5-O3
//! substrate of *"Protean: A Programmable Spectre Defense"* (HPCA 2026),
//! rebuilt in Rust.
//!
//! The crate provides:
//!
//! * [`Core`] — the out-of-order pipeline (fetch/rename/issue/execute/
//!   commit, ROB, LQ/SQ with forwarding and memory-order speculation,
//!   TAGE/BTB/RSB prediction, blocking divider, full squash recovery);
//! * [`Cache`] — set-associative caches with the per-byte L1D metadata
//!   bits that back ProtISA's protection tags (§IV-C2a) and SPT's shadow
//!   bits;
//! * [`CoreConfig`] — P-core / E-core presets following the paper's
//!   Tab. III Alder Lake configuration;
//! * [`DefensePolicy`] — the hook interface every hardware defense
//!   implements ([`UnsafePolicy`] is the unprotected baseline);
//! * [`SpeculationModel`] — `AtCommit` (comprehensive) and `Control`
//!   (§II-B2);
//! * [`Multicore`] — a simple invalidation-coherent multi-core wrapper
//!   for the PARSEC-style multi-threaded workloads.
//!
//! # Example
//!
//! ```
//! use protean_arch::ArchState;
//! use protean_isa::assemble;
//! use protean_sim::{Core, CoreConfig, SimExit, UnsafePolicy};
//!
//! let prog = assemble("mov r0, 7\nadd r1, r0, 35\nhalt\n").unwrap();
//! let core = Core::new(&prog, CoreConfig::test_tiny(), Box::new(UnsafePolicy), &ArchState::new());
//! let result = core.run(1_000, 100_000);
//! assert_eq!(result.exit, SimExit::Halted);
//! assert_eq!(result.final_regs[protean_isa::Reg::R1.index()], 42);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bpred;
mod cache;
mod config;
mod defense;
pub mod json;
mod multicore;
mod pipeline;
pub mod profile;
mod sched;
mod stats;
pub mod trace;

pub use bpred::{Btb, Rsb, TagePredictor, HIST_LENGTHS};
pub use cache::{AccessResult, BoolMetaCache, Cache};
pub use config::{CacheConfig, CoreConfig, MemProtTracking, SpeculationModel};
pub use defense::{
    propagate_tags, sensitive_phys, sensitive_root_tainted, sensitive_value_tainted, BlockPoint,
    DefensePolicy, RegTags, Seq, SpecFrontier, SquashKind, UnsafePolicy, NO_ROOT,
};
pub use multicore::{Multicore, MulticoreResult, Thread};
pub use pipeline::{Core, DstInfo, DynInst, MemState, SimExit, SimResult, UopStatus};
pub use stats::Stats;
pub use trace::{AuditRecord, BlockedAt, FetchGroupEvent, SquashEvent, Trace, Tracer, UopTrace};
