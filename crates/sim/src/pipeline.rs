//! The speculative, out-of-order core.
//!
//! A gem5-O3-style pipeline: fetch (with TAGE/BTB/RSB prediction and a
//! constant front-end depth), rename (rename map, physical register file,
//! free list, and ProtISA's rename-map protection bits), dispatch into
//! a reorder buffer with load/store-queue accounting, an issue window,
//! execution with per-FU latencies (including a blocking, operand-
//! dependent divider), store-to-load forwarding with memory-order
//! speculation (and violation squashes), delayed branch resolution, and
//! in-order commit.
//!
//! The active [`DefensePolicy`] is consulted at every security-relevant
//! point; the unsafe baseline is the policy that never blocks anything.

use crate::defense::{BlockPoint, DefensePolicy, RegTags, Seq, SpecFrontier, SquashKind, NO_ROOT};
use crate::profile::{Section, SectionTimes};
use crate::sched::{FetchEntry, FetchQueue, Scheduler, SetId};
use crate::trace::{Trace, Tracer};
use crate::{Btb, Rsb, TagePredictor};
use crate::{Cache, CoreConfig, MemProtTracking, Stats};
use protean_arch::{ArchState, Memory};
use protean_isa::{
    alu_eval, div_eval, CtrlFlow, DecodedInst, DecodedProgram, Flags, InlineVec, Inst, Op, Operand,
    Program, Reg, RegSet,
};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Per-destination rename bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
pub struct DstInfo {
    /// Architectural register written.
    pub arch: Reg,
    /// Newly allocated physical register.
    pub new_phys: usize,
    /// Previous mapping (restored on squash, freed on commit).
    pub prev_phys: usize,
    /// Previous rename-map protection bit (restored on squash).
    pub prev_prot: bool,
    /// The computed result (valid once executed).
    pub value: u64,
}

/// Memory-access state of a load/store µop.
#[derive(Clone, Debug)]
pub struct MemState {
    /// Effective address (set at execute).
    pub addr: Option<u64>,
    /// Access size in bytes.
    pub size: u64,
    /// `true` for stores (including `call`).
    pub is_store: bool,
    /// Load: value read. Store: data value (once captured).
    pub value: u64,
    /// Store: data operand captured.
    pub data_ready: bool,
    /// Store: LSQ protection bit of the data operand (ProtISA §IV-C2b).
    pub data_prot: bool,
    /// Store: taint root of the data operand.
    pub data_yrot: Seq,
    /// Store: value taint of the data operand.
    pub data_taint: bool,
    /// Load: the store it forwarded from, if any.
    pub fwd_from: Option<Seq>,
    /// Load: forwarding store's data taint root (ProtTrack §VI-B2c).
    pub fwd_data_yrot: Seq,
    /// Load: forwarding store's value taint.
    pub fwd_data_taint: bool,
}

/// µop lifecycle in the backend.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UopStatus {
    /// Dispatched, waiting for operands / a port / the defense.
    Waiting,
    /// Executing; completes at the given cycle.
    Executing(u64),
    /// Store that computed its address but awaits its data operand.
    WaitingData,
    /// Finished execution.
    Done,
}

/// An in-flight µop: the unit all [`DefensePolicy`] hooks operate on.
///
/// `repr(C)` pins the declaration order: the load/store disambiguation
/// scans (`execute_load` / `execute_store`) walk the whole ROB touching
/// only `seq`, `inst`, and `mem`, so those lead the struct and the
/// bulky inline arrays (`srcs`, `dsts`, stage timing) trail it — a scan
/// reads the first couple of cache lines of each entry, never the tail.
#[derive(Clone, Debug)]
#[repr(C)]
pub struct DynInst {
    /// Global sequence number (1-based; age order).
    pub seq: Seq,
    /// Static instruction index.
    pub idx: u32,
    /// Program counter.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Memory state for loads/stores.
    pub mem: Option<MemState>,
    /// Lifecycle status.
    pub status: UopStatus,
    /// Predicted next instruction index (branches; `None` = predicted
    /// stop).
    pub pred_next: Option<u32>,
    /// For conditional branches: predicted direction.
    pub pred_taken: bool,
    /// Actual next index once executed (`Some(None)` = invalid target).
    pub actual_next: Option<Option<u32>>,
    /// Actual direction (conditional branches).
    pub actual_taken: bool,
    /// Whether this branch was discovered mispredicted at execute.
    pub mispredicted: bool,
    /// Whether this branch has resolved (squash initiated if needed).
    pub resolved: bool,
    /// Wakeup already granted to dependents.
    pub wakeup_done: bool,
    /// TAGE global-history snapshot from before this µop's fetch.
    pub hist_snapshot: u64,
    /// RSB snapshot from before this µop's fetch. Interned by the RSB
    /// ([`Rsb::snapshot_shared`]) so every µop fetched between two RSB
    /// mutations shares one allocation.
    pub rsb_snapshot: Arc<[u64]>,

    // ---- Defense-generic state --------------------------------------
    /// `PROT` prefix: output registers are architecturally protected.
    pub prot_out: bool,
    /// Any input register protected at rename (ProtISA Def. 1 reg part).
    pub src_prot: bool,
    /// Any *sensitive* input register protected at rename (access
    /// transmitter, under the policy's transmitter set).
    pub sens_prot: bool,
    /// Load: read protected memory (set at execute; ProtISA Def. 1
    /// memory part).
    pub mem_prot: Option<bool>,
    /// OR of source value taints at rename.
    pub in_taint: bool,
    /// Max of source taint roots at rename.
    pub in_yrot: Seq,
    /// AccessDelay-style: hold dependents until this µop is
    /// non-speculative.
    pub delay_wakeup_nonspec: bool,
    /// ProtTrack store-forwarding rule: hold dependents until this taint
    /// root is non-speculative.
    pub wakeup_hold_root: Seq,
    /// ProtTrack access-predictor decision for loads
    /// (`Some(true)` = predicted *no-access*).
    pub pred_no_access: Option<bool>,
    /// Division µop faulted (zero divisor) — triggers a machine clear at
    /// commit.
    pub div_fault: bool,
    /// Registers feeding the effective-address computation (pre-decoded;
    /// empty for non-memory µops). Drives the store-data/address split in
    /// the operand-readiness checks without re-walking the instruction.
    pub addr_regs: RegSet,
    /// Store-data register, when the store's data operand is a register
    /// (`None` for immediate stores and `call`).
    pub data_reg: Option<Reg>,

    // ---- Timing (the AMuLeT* stage-timing adversary observes these) --
    /// Cycle fetched.
    pub fetch_cycle: u64,
    /// Cycle renamed.
    pub rename_cycle: u64,
    /// Cycle issued (0 until issued).
    pub issue_cycle: u64,
    /// Cycle completed.
    pub complete_cycle: u64,

    // ---- Bulky inline storage, kept at the tail (see struct docs) ----
    /// Renamed sources: (architectural, physical). Inline storage: no
    /// instruction names more than three source registers.
    pub srcs: InlineVec<(Reg, usize), 3>,
    /// Renamed destinations. At most two: the explicit destination plus
    /// the implicit `RFLAGS` write.
    pub dsts: InlineVec<DstInfo, 2>,
}

impl DynInst {
    /// Physical register of architectural source `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a source of this µop. The message carries
    /// the µop's program index and fetch cycle so a failure inside a
    /// parallel campaign is attributable to one generated program (and
    /// through the campaign's seed splitting, to one generator seed).
    pub fn src_phys(&self, reg: Reg) -> usize {
        self.srcs
            .iter()
            .find(|(r, _)| *r == reg)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| {
                panic!(
                    "{reg} is not a source of {} (µop idx={} pc={:#x} seq={} fetched @cycle {})",
                    self.inst, self.idx, self.pc, self.seq, self.fetch_cycle
                )
            })
    }

    /// Whether the µop is a load (including `ret`).
    pub fn is_load(&self) -> bool {
        self.inst.is_load()
    }

    /// Whether the µop is a store (including `call`).
    pub fn is_store(&self) -> bool {
        self.inst.is_store()
    }
}

/// Why the simulation ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimExit {
    /// A `halt` committed.
    Halted,
    /// The committed-instruction limit was reached.
    MaxInsts,
    /// The cycle limit was reached.
    MaxCycles,
    /// A committed indirect branch had an out-of-range target.
    BadControlFlow,
    /// The watchdog fired (no commit for a long time) — a pipeline bug.
    Deadlock,
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Why the run ended.
    pub exit: SimExit,
    /// Statistics.
    pub stats: Stats,
    /// Per-committed-µop stage timing: `[pc, fetch, rename, issue,
    /// complete, commit]` — the AMuLeT\* timing adversary's observation
    /// (paper §VII-B1d). Recorded only when tracing is enabled.
    pub timing: Vec<[u64; 6]>,
    /// Adversary-visible cache tag state at the end of the run (L1D then
    /// L2) — the AMuLeT default adversary (§VII-B2).
    pub cache_obs: Vec<u64>,
    /// Committed instruction indices (tracing only).
    pub committed_idxs: Vec<u32>,
    /// Final architectural register values.
    pub final_regs: [u64; Reg::COUNT],
    /// Final rename-map protection bits (ProtISA's architectural
    /// register ProtSet as tracked by hardware, §IV-C1).
    pub final_reg_prot: [bool; Reg::COUNT],
    /// Backend-state dump captured when the watchdog fired
    /// ([`SimExit::Deadlock`] only). Rendered to a string so a parallel
    /// campaign runner can report it atomically instead of letting
    /// worker dumps interleave on stderr; it is also printed to stderr
    /// directly when `PROTEAN_SIM_DEBUG=1`.
    pub deadlock_dump: Option<String>,
    /// Per-µop pipeline trace and defense-decision audit log, recorded
    /// when [`CoreConfig::trace`] or `PROTEAN_TRACE` is set (see
    /// [`crate::trace`]). `None` when tracing is disabled.
    pub trace: Option<Trace>,
}

/// One simulated out-of-order core.
pub struct Core<'a> {
    cfg: CoreConfig,
    program: &'a Program,
    policy: Box<dyn DefensePolicy>,

    cycle: u64,
    next_seq: Seq,
    halted: Option<SimExit>,

    // Front end.
    fetch_idx: Option<u32>,
    fetch_queue: FetchQueue,
    fetch_stalled_until: u64,
    /// Decode-once µop table, rebuilt at every [`Core::reset`] (the
    /// program reference may point at reused storage, so no caching on
    /// pointer identity). Empty when `decode_cache` is off.
    decoded: DecodedProgram,
    /// Effective decode-cache switch: [`CoreConfig::decode_cache`] unless
    /// overridden by `PROTEAN_DECODE_CACHE` (read once at construction).
    decode_cache: bool,
    /// Per-static-instruction sensitive-register sets under the active
    /// policy's transmitter set, precomputed at reset alongside the
    /// decoded table. The legacy path recomputes per dynamic visit so the
    /// differential test exercises genuinely independent code.
    sens_table: Vec<RegSet>,
    /// Static index whose L1I miss has already been booked and filled:
    /// the post-stall re-fetch must not access the cache again (it would
    /// book a spurious hit and bump the LRU clock twice).
    l1i_paid: Option<u32>,
    tage: TagePredictor,
    btb: Btb,
    rsb: Rsb,

    // Rename.
    rename_map: [usize; Reg::COUNT],
    prot_map: [bool; Reg::COUNT],
    free_list: VecDeque<usize>,

    // Backend.
    rob: VecDeque<DynInst>,
    prf_value: Vec<u64>,
    prf_done: Vec<bool>,
    prf_ready: Vec<bool>,
    tags: RegTags,
    lq_used: usize,
    sq_used: usize,
    div_busy_until: u64,
    /// Event-driven scheduling state (see [`crate::sched`]): completion
    /// wheel, ready/waiting/waiter sets, per-register dependent lists.
    sched: Scheduler,
    /// Speculative-frontier snapshot, cached per tick and invalidated on
    /// every event that can move it (dispatch, resolve, commit, squash).
    /// Each pipeline stage still takes one snapshot at stage start, as
    /// the per-stage scans always did.
    cached_frontier: Option<SpecFrontier>,
    /// µops the defense denied at the execute gate this tick — recorded
    /// so idle-cycle fast-forward can bulk-attribute the skipped cycles.
    exec_blocked: Vec<Seq>,
    /// Scratch for draining the completion wheel.
    completions: Vec<Seq>,
    /// Scratch for draining dependent lists in `publish_ready`.
    dep_scratch: Vec<Seq>,
    /// Scratch for sorting each cache set's resident ways by recency in
    /// the end-of-run `tag_observation_into` calls (reused across runs;
    /// the observation itself goes straight into the `SimResult` vector).
    obs_scratch: Vec<(u64, u64)>,

    // Memory.
    mem: Memory,
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    l3: Cache,
    shadow_unprot: BTreeSet<u64>,

    // Results.
    stats: Stats,
    committed_regs: [u64; Reg::COUNT],
    timing: Vec<[u64; 6]>,
    committed_idxs: Vec<u32>,
    record_traces: bool,
    /// Whether µop-level tracing is enabled ([`CoreConfig::trace`] or
    /// `PROTEAN_TRACE`), read once at construction so [`Core::reset`]
    /// never re-reads the environment.
    trace_on: bool,
    /// `Some` only when µop-level tracing is enabled ([`CoreConfig::trace`]
    /// or `PROTEAN_TRACE`): every event site is one `Option` check when off.
    tracer: Option<Box<Tracer>>,
    no_commit_cycles: u64,
    /// `PROTEAN_DEBUG_BLOCKED`, read once at construction.
    debug_blocked: bool,
    /// `PROTEAN_SIM_DEBUG=1`, read once at construction.
    sim_debug: bool,
    /// Section profiling enabled (`PROTEAN_PROFILE`, read once): one
    /// boolean branch per tick when off (see [`crate::profile`]).
    profile_on: bool,
    /// Per-core section accumulator, flushed into the process-wide
    /// totals at the end of every run.
    profile: SectionTimes,
}

const WATCHDOG_CYCLES: u64 = 100_000;

impl<'a> Core<'a> {
    /// Creates a core running `program` from `initial` architectural
    /// state under the given defense policy.
    pub fn new(
        program: &'a Program,
        cfg: CoreConfig,
        policy: Box<dyn DefensePolicy>,
        initial: &ArchState,
    ) -> Core<'a> {
        let n_phys = cfg.phys_regs.max(Reg::COUNT * 2);
        let meta_fill = policy.l1d_meta_fill();
        let trace_on = cfg.trace || std::env::var("PROTEAN_TRACE").is_ok_and(|v| v.trim() != "0");
        let decode_cache = match std::env::var("PROTEAN_DECODE_CACHE") {
            Ok(v) => v.trim() != "0",
            Err(_) => cfg.decode_cache,
        };
        let flat_sched = match std::env::var("PROTEAN_SCHED") {
            Ok(v) => v.trim() != "btree",
            Err(_) => cfg.flat_sched,
        };
        // The largest completion latency any µop can schedule, for the
        // calendar queue's ring sizing: a DRAM-missing load (or any cache
        // hit, +1 for the load pipe), the multiplier, and the worst-case
        // divider (base + 64 significant bits / 2; faults use the short
        // fault latency).
        let max_completion_latency = (1 + cfg.mem_latency)
            .max(1 + cfg.l1d.latency)
            .max(1 + cfg.l2.latency)
            .max(1 + cfg.l3.latency)
            .max(cfg.mul_latency)
            .max(protean_isa::DIV_BASE_LATENCY + 32)
            .max(protean_isa::DIV_FAULT_LATENCY);
        let mut core = Core {
            fetch_idx: None,
            fetch_queue: FetchQueue::default(),
            fetch_stalled_until: 0,
            decoded: DecodedProgram::default(),
            decode_cache,
            sens_table: Vec::new(),
            l1i_paid: None,
            tage: TagePredictor::new(),
            btb: Btb::new(cfg.btb_entries),
            rsb: Rsb::new(cfg.rsb_entries),
            rename_map: [0usize; Reg::COUNT],
            prot_map: [true; Reg::COUNT],
            free_list: VecDeque::with_capacity(n_phys),
            rob: VecDeque::with_capacity(cfg.rob_size),
            prf_done: vec![true; n_phys],
            prf_ready: vec![true; n_phys],
            prf_value: vec![0u64; n_phys],
            tags: RegTags::new(n_phys, Reg::COUNT),
            lq_used: 0,
            sq_used: 0,
            div_busy_until: 0,
            sched: Scheduler::new(n_phys, cfg.rob_size, max_completion_latency, flat_sched),
            cached_frontier: None,
            exec_blocked: Vec::new(),
            completions: Vec::new(),
            dep_scratch: Vec::new(),
            obs_scratch: Vec::new(),
            mem: Memory::default(),
            l1d: Cache::new(cfg.l1d, meta_fill),
            l1i: Cache::new(cfg.l1i, true),
            l2: Cache::new(cfg.l2, true),
            l3: Cache::new(cfg.l3, true),
            shadow_unprot: BTreeSet::new(),
            stats: Stats::default(),
            committed_regs: [0u64; Reg::COUNT],
            timing: Vec::new(),
            committed_idxs: Vec::new(),
            record_traces: false,
            trace_on,
            tracer: None,
            cycle: 0,
            next_seq: 1,
            halted: None,
            cfg,
            program,
            policy,
            no_commit_cycles: 0,
            debug_blocked: std::env::var_os("PROTEAN_DEBUG_BLOCKED").is_some(),
            sim_debug: std::env::var_os("PROTEAN_SIM_DEBUG").is_some_and(|v| v == "1"),
            profile_on: crate::profile::enabled(),
            profile: SectionTimes::default(),
        };
        core.reinit(initial);
        core
    }

    /// Rearms this core to run `program` from `initial` state under
    /// `policy`, reusing every backing allocation (ROB, register file,
    /// caches, predictors, scheduler, scratch buffers).
    ///
    /// Equivalent to building a fresh core with [`Core::new`] under the
    /// same `CoreConfig`: every piece of state `new` initialises is
    /// re-initialised here, so a reset core produces byte-identical
    /// [`SimResult`]s (asserted by the `core_reset` integration test).
    /// The core configuration is fixed at construction; campaign arenas
    /// key reuse on the config staying the same.
    pub fn reset(
        &mut self,
        program: &'a Program,
        policy: Box<dyn DefensePolicy>,
        initial: &ArchState,
    ) {
        self.program = program;
        self.policy = policy;
        self.reinit(initial);
    }

    /// State (re-)initialisation shared by [`Core::new`] and
    /// [`Core::reset`]: everything `self.cfg`-sized is assumed allocated;
    /// all mutable simulation state is rebuilt from `initial` and
    /// `self.policy`/`self.program`.
    fn reinit(&mut self, initial: &ArchState) {
        let n_phys = self.prf_value.len();
        self.cycle = 0;
        self.next_seq = 1;
        self.halted = None;
        self.fetch_idx = if self.program.is_empty() {
            None
        } else {
            Some(0)
        };
        self.fetch_queue.clear();
        self.fetch_stalled_until = 0;
        self.sens_table.clear();
        if self.decode_cache {
            self.decoded.rebuild(self.program);
            let transmitters = self.policy.transmitters();
            self.sens_table.extend(
                self.program
                    .insts
                    .iter()
                    .map(|i| transmitters.sensitive_regs(i)),
            );
        } else {
            self.decoded.clear();
        }
        self.l1i_paid = None;
        self.tage.reset();
        self.btb.reset();
        self.rsb.reset();
        for r in Reg::all() {
            self.rename_map[r.index()] = r.index();
        }
        self.prot_map = [true; Reg::COUNT];
        self.free_list.clear();
        self.free_list.extend(Reg::COUNT..n_phys);
        self.rob.clear();
        self.prf_value.fill(0);
        for r in Reg::all() {
            self.prf_value[r.index()] = initial.reg(r);
        }
        self.prf_done.fill(true);
        self.prf_ready.fill(true);
        self.tags.reset(Reg::COUNT);
        self.lq_used = 0;
        self.sq_used = 0;
        self.div_busy_until = 0;
        self.sched.reset();
        self.cached_frontier = None;
        self.exec_blocked.clear();
        self.completions.clear();
        self.dep_scratch.clear();
        self.mem.clone_from(&initial.mem);
        let meta_fill = self.policy.l1d_meta_fill();
        self.l1d.reset(meta_fill);
        self.l1i.reset(true);
        self.l2.reset(true);
        self.l3.reset(true);
        self.shadow_unprot.clear();
        self.stats = Stats::default();
        self.committed_regs = initial.regs;
        self.timing.clear();
        self.committed_idxs.clear();
        self.record_traces = false;
        self.tracer = self
            .trace_on
            .then(|| Box::new(Tracer::new(self.policy.name())));
        self.no_commit_cycles = 0;
    }

    /// Enables recording of the commit-timing trace and committed-index
    /// trace (used by the fuzzer's adversary models).
    pub fn record_traces(&mut self, on: bool) {
        self.record_traces = on;
    }

    /// Replaces this core's L3 with a shared one (multi-core runs).
    pub(crate) fn install_l3(&mut self, l3: Cache) {
        self.l3 = l3;
    }

    /// Runs and hands back the (possibly shared) L3 alongside the result.
    pub(crate) fn run_returning_l3(
        mut self,
        max_insts: u64,
        max_cycles: u64,
    ) -> (SimResult, Cache) {
        let result = self.run_inner(max_insts, max_cycles);
        // A storage-free husk: the core is dropped right after the swap,
        // so allocating a full L3's worth of arrays for it would be
        // pure waste (~0.5M lines for the 30 MiB preset).
        let placeholder = Cache::placeholder(self.cfg.l3);
        let l3 = std::mem::replace(&mut self.l3, placeholder);
        (result, l3)
    }

    /// The active defense policy.
    pub fn policy(&self) -> &dyn DefensePolicy {
        &*self.policy
    }

    /// Runs until halt or a limit; returns the result.
    pub fn run(mut self, max_insts: u64, max_cycles: u64) -> SimResult {
        self.run_inner(max_insts, max_cycles)
    }

    /// Runs without consuming the core, so an arena core can be
    /// [`reset`](Core::reset) and reused for the next program. The core
    /// must be freshly constructed or reset; running twice without a
    /// reset would continue from the halted state.
    pub fn run_mut(&mut self, max_insts: u64, max_cycles: u64) -> SimResult {
        self.run_inner(max_insts, max_cycles)
    }

    fn run_inner(&mut self, max_insts: u64, max_cycles: u64) -> SimResult {
        let mut deadlock_dump = None;
        while self.halted.is_none() {
            if self.stats.committed >= max_insts {
                self.halted = Some(SimExit::MaxInsts);
                break;
            }
            if self.cycle >= max_cycles {
                self.halted = Some(SimExit::MaxCycles);
                break;
            }
            if self.no_commit_cycles > WATCHDOG_CYCLES {
                let dump = self.debug_dump();
                if self.sim_debug {
                    eprint!("{dump}");
                }
                deadlock_dump = Some(dump);
                self.halted = Some(SimExit::Deadlock);
                break;
            }
            // Idle-cycle fast-forward after the tick: when a tick changed
            // nothing, every cycle until the next scheduled event is an
            // exact repeat — jump there and bulk-attribute the skipped
            // cycles. Disabled under PROTEAN_DEBUG_BLOCKED so the
            // per-cycle stderr lines stay per-cycle.
            if !self.profile_on {
                self.tick();
                if !self.sched.progress() && !self.debug_blocked {
                    self.fast_forward(max_cycles);
                }
            } else {
                self.tick_profiled();
                if !self.sched.progress() && !self.debug_blocked {
                    let t = std::time::Instant::now();
                    self.fast_forward(max_cycles);
                    self.profile.add(Section::FastForward, t.elapsed());
                }
            }
        }
        if self.profile_on {
            crate::profile::flush(&mut self.profile);
        }
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = self.cycle;
        stats.l1i_hits = self.l1i.hits;
        stats.l1i_misses = self.l1i.misses;
        stats.l1d_hits = self.l1d.hits;
        stats.l1d_misses = self.l1d.misses;
        stats.l2_hits = self.l2.hits;
        stats.l2_misses = self.l2.misses;
        stats.l3_hits = self.l3.hits;
        stats.l3_misses = self.l3.misses;
        stats.iq_hwm = self.sched.iq_hwm();
        stats.wheel_hwm = self.sched.wheel_hwm();
        stats.policy = self.policy.stats();
        // Adversary observation, straight into the result vector (one
        // exact-capacity allocation; the per-set sort uses the arena's
        // reusable scratch instead of allocating per call).
        let mut cache_obs = Vec::with_capacity(
            self.cfg.l1d.sets() * (self.cfg.l1d.ways + 1)
                + 1
                + self.cfg.l2.sets() * (self.cfg.l2.ways + 1),
        );
        self.l1d
            .tag_observation_into(&mut cache_obs, &mut self.obs_scratch);
        cache_obs.push(u64::MAX); // level separator
        self.l2
            .tag_observation_into(&mut cache_obs, &mut self.obs_scratch);
        let trace = self.tracer.take().map(|t| t.finish(self.cycle));
        SimResult {
            exit: self.halted.unwrap(),
            stats,
            timing: std::mem::take(&mut self.timing),
            cache_obs,
            committed_idxs: std::mem::take(&mut self.committed_idxs),
            final_regs: self.committed_regs,
            final_reg_prot: self.prot_map,
            deadlock_dump,
            trace,
        }
    }

    /// Renders backend state (watchdog diagnostics) to a string. Never
    /// printed unconditionally: under a parallel campaign, per-worker
    /// stderr writes would interleave into garbage, so the dump travels
    /// in [`SimResult::deadlock_dump`] and only reaches stderr when
    /// `PROTEAN_SIM_DEBUG=1`.
    fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "--- deadlock dump @cycle {} ---", self.cycle);
        let _ = writeln!(
            out,
            "fetch_idx={:?} fq={} free={} lq={} sq={}",
            self.fetch_idx,
            self.fetch_queue.pending(),
            self.free_list.len(),
            self.lq_used,
            self.sq_used
        );
        if let Some(g) = self.fetch_queue.front_group() {
            let idxs: Vec<u32> = g.remaining().iter().map(|e| e.idx).collect();
            let _ = writeln!(out, "  head fetch group ready@{}: {idxs:?}", g.ready_cycle);
        }
        for u in self.rob.iter().take(8) {
            let srcs: Vec<String> = u
                .srcs
                .iter()
                .map(|(r, p)| format!("{r}=p{p}{}", if self.prf_ready[*p] { "+" } else { "-" }))
                .collect();
            let _ = writeln!(
                out,
                "  seq={} idx={} {:?} {} srcs={:?} mem={:?}",
                u.seq,
                u.idx,
                u.status,
                u.inst,
                srcs,
                u.mem.as_ref().map(|m| (m.addr, m.data_ready))
            );
        }
        out
    }

    /// The speculative-frontier snapshot for the current stage, cached
    /// until an event moves it (see [`Core::invalidate_frontier`]). The
    /// oldest unresolved branch comes from the scheduler's ordered set
    /// instead of an O(ROB) scan.
    fn frontier(&mut self) -> SpecFrontier {
        if let Some(fr) = self.cached_frontier {
            return fr;
        }
        let head_seq = self.rob.front().map(|u| u.seq).unwrap_or(Seq::MAX);
        let oldest_unresolved_branch = self
            .sched
            .first(SetId::UnresolvedBranches)
            .unwrap_or(Seq::MAX);
        let fr = SpecFrontier {
            head_seq,
            oldest_unresolved_branch,
            model: self.cfg.speculation,
        };
        self.cached_frontier = Some(fr);
        fr
    }

    /// Drops the cached frontier. Called whenever the ROB head or the
    /// unresolved-branch set may have changed: dispatch, branch
    /// resolution, commit, and squash. Stages that already took their
    /// snapshot keep using it for the rest of the stage — exactly the
    /// one-snapshot-per-stage behaviour of the original scans.
    fn invalidate_frontier(&mut self) {
        self.cached_frontier = None;
    }

    /// Records a defense denial of the µop at ROB index `i` in the trace
    /// (no-op when tracing is off — one branch, no allocation).
    fn trace_block(&mut self, i: usize, point: BlockPoint, fr: &SpecFrontier) {
        if self.tracer.is_some() {
            let u = &self.rob[i];
            let rule = self.policy.block_rule(u, point, &self.tags, fr);
            let (seq, cycle) = (u.seq, self.cycle);
            if let Some(t) = self.tracer.as_mut() {
                t.on_block(seq, point, cycle, rule);
            }
        }
    }

    /// Runs `f`, charging its wall time to component section `s` when
    /// profiling is on (one branch when off — same pure-observer
    /// discipline as the stage laps). The stage laps in
    /// [`Core::tick_profiled`] subtract whatever the component sections
    /// booked during them, so sections stay disjoint. Metadata work the
    /// defense policies do through their `&Cache` hooks is *not* routed
    /// through here and stays attributed to the parent stage.
    #[inline]
    fn with_comp<R>(&mut self, s: Section, f: impl FnOnce(&mut Self) -> R) -> R {
        if !self.profile_on {
            return f(self);
        }
        let t = std::time::Instant::now();
        let r = f(self);
        self.profile.add(s, t.elapsed());
        r
    }

    /// Total nanoseconds booked to the component sections so far (the
    /// delta subtracted from the enclosing stage's lap).
    fn comp_nanos(&self) -> u64 {
        self.profile.nanos_of(Section::CacheAccess)
            + self.profile.nanos_of(Section::CacheMeta)
            + self.profile.nanos_of(Section::Bpred)
    }

    /// One cycle.
    fn tick(&mut self) {
        self.sched.clear_progress();
        self.complete_and_wakeup();
        self.capture_store_data();
        self.resolve_branches();
        self.commit();
        self.issue();
        self.rename();
        self.fetch();
        self.cycle += 1;
        self.no_commit_cycles += 1;
    }

    /// One cycle with section profiling: [`Core::tick`] with a lap at
    /// every stage boundary. A separate body so the unprofiled tick
    /// carries no `Instant` reads at all; `#[cold]` keeps it out of the
    /// hot path's code layout.
    #[cold]
    fn tick_profiled(&mut self) {
        let mut t = std::time::Instant::now();
        self.sched.clear_progress();
        self.complete_and_wakeup();
        t = self.profile.lap(t, Section::Wakeup);
        self.capture_store_data();
        t = self.profile.lap(t, Section::StoreData);
        // Each stage's lap subtracts the component-model time
        // (cache_access/cache_meta/bpred) its calls booked, so stage and
        // component sections partition the tick and shares stay
        // meaningful.
        let comp = self.comp_nanos();
        self.resolve_branches();
        let comp_delta = self.comp_nanos() - comp;
        t = self.profile.lap_minus(t, Section::Resolve, comp_delta);
        let comp = self.comp_nanos();
        self.commit();
        let comp_delta = self.comp_nanos() - comp;
        t = self.profile.lap_minus(t, Section::Commit, comp_delta);
        // `issue` books its `execute_uop` spans to `Execute` (itself net
        // of component time); the issue lap subtracts both.
        let exec_before = self.profile.nanos_of(Section::Execute);
        let comp = self.comp_nanos();
        self.issue();
        let exec_delta = self.profile.nanos_of(Section::Execute) - exec_before;
        let comp_delta = self.comp_nanos() - comp;
        t = self
            .profile
            .lap_minus(t, Section::Issue, exec_delta + comp_delta);
        self.rename();
        t = self.profile.lap(t, Section::Rename);
        let comp = self.comp_nanos();
        self.fetch();
        let comp_delta = self.comp_nanos() - comp;
        self.profile.lap_minus(t, Section::Fetch, comp_delta);
        self.cycle += 1;
        self.no_commit_cycles += 1;
    }

    /// Idle-cycle fast-forward. Called after a tick that changed no
    /// simulator state: defense decisions are pure functions of (µop,
    /// tags, frontier), all of which only change on progress events, so
    /// every cycle until the next scheduled event is an exact repeat of
    /// the one just simulated. Jump straight to that event — the
    /// earliest completion on the wheel, the divider or front-end stall
    /// deadline, or the fetch queue's next ready entry — and
    /// bulk-attribute the skipped cycles' blocked-cycle and no-commit
    /// accounting, so `Stats` and the trace stay byte-identical with
    /// per-cycle simulation. The jump is capped so the max-cycles and
    /// watchdog exits still fire at exactly the cycle they always did.
    /// Stale wheel entries from squashed µops can only make the jump
    /// shorter than necessary (the tick at the stale event discards it,
    /// idles, and fast-forwards again), never longer.
    fn fast_forward(&mut self, max_cycles: u64) {
        // `tick` has already advanced `self.cycle`, so a deadline equal
        // to `cycle` means the *upcoming* tick behaves differently from
        // the one just simulated — it must count as a wake point (making
        // `target == cycle`, i.e. no jump). Only deadlines strictly in
        // the past are spent.
        let cycle = self.cycle;
        let mut wake = u64::MAX;
        if let Some(c) = self.sched.next_completion_cycle() {
            wake = wake.min(c);
        }
        if self.fetch_stalled_until >= cycle {
            wake = wake.min(self.fetch_stalled_until);
        }
        if let Some(rc) = self.fetch_queue.head_ready_cycle() {
            if rc >= cycle {
                wake = wake.min(rc);
            }
        }
        if self.div_busy_until >= cycle {
            wake = wake.min(self.div_busy_until);
        }
        // Never jump past an exit condition.
        let nc_budget = (WATCHDOG_CYCLES + 1).saturating_sub(self.no_commit_cycles);
        let target = wake.min(max_cycles).min(cycle.saturating_add(nc_budget));
        if target <= cycle {
            return;
        }
        let delta = target - cycle;
        // Each skipped tick would have counted exactly the candidates the
        // just-simulated tick counted: every wakeup-pending µop, every
        // resolve candidate (only the oldest under the buggy arbiter),
        // and every defense-denied issue candidate.
        let buggy = self.policy.pending_squash_bug();
        let resolve_candidates = if buggy {
            self.sched.len(SetId::ResolvePending).min(1)
        } else {
            self.sched.len(SetId::ResolvePending)
        };
        self.stats.wakeup_blocked_cycles += delta * self.sched.len(SetId::WakeupPending) as u64;
        self.stats.resolve_blocked_cycles += delta * resolve_candidates as u64;
        self.stats.exec_blocked_cycles += delta * self.exec_blocked.len() as u64;
        if self.tracer.is_some() {
            let fr = self.frontier();
            let last = target - 1;
            let mut scratch = std::mem::take(&mut self.sched.scratch);
            for point in [BlockPoint::Wakeup, BlockPoint::Resolve, BlockPoint::Execute] {
                scratch.clear();
                match point {
                    BlockPoint::Wakeup => {
                        self.sched.collect(SetId::WakeupPending, &mut scratch);
                    }
                    BlockPoint::Resolve if buggy => {
                        scratch.extend(self.sched.first(SetId::ResolvePending));
                    }
                    BlockPoint::Resolve => {
                        self.sched.collect(SetId::ResolvePending, &mut scratch);
                    }
                    BlockPoint::Execute => scratch.extend(self.exec_blocked.iter().copied()),
                }
                for &seq in &scratch {
                    let i = self.rob_index(seq).expect("blocked µop is in the ROB");
                    let rule = self.policy.block_rule(&self.rob[i], point, &self.tags, &fr);
                    if let Some(t) = self.tracer.as_mut() {
                        t.on_block_many(seq, point, cycle, last, delta, rule);
                    }
                }
            }
            self.sched.scratch = scratch;
        }
        self.no_commit_cycles += delta;
        self.cycle = target;
    }

    // ------------------------------------------------------------------
    // Completion & wakeup
    // ------------------------------------------------------------------

    /// ROB index of the µop with sequence number `seq` (sequence numbers
    /// are strictly increasing along the ROB, though not contiguous
    /// after squashes).
    ///
    /// Strict monotonicity gives `rob[i].seq >= front.seq + i`, so the
    /// µop can only sit at index `seq - front.seq` or below: guess there
    /// and scan down. Without squash gaps the guess is exact, making
    /// this O(1) on the hot path (it was the campaign profile's top
    /// single symbol as a `VecDeque` binary search, ~11% of CPU).
    fn rob_index(&self, seq: Seq) -> Option<usize> {
        let front = self.rob.front()?.seq;
        if seq < front {
            return None;
        }
        let mut i = ((seq - front) as usize).min(self.rob.len() - 1);
        loop {
            let s = self.rob[i].seq;
            if s == seq {
                return Some(i);
            }
            if s < seq || i == 0 {
                return None;
            }
            i -= 1;
        }
    }

    /// Exact operand-readiness predicate of the issue stage: every
    /// source ready, except that a store's pure data operand may lag
    /// (split STA/STD; captured later by `capture_store_data`).
    fn operands_ready(&self, u: &DynInst) -> bool {
        u.srcs.iter().all(|(r, p)| {
            self.prf_ready[*p]
                || (u.is_store() && Some(*r) == u.data_reg && !u.addr_regs.contains(*r))
        })
    }

    /// A source register that keeps [`Core::operands_ready`] false — the
    /// dependent list the µop parks on until that register is written.
    fn first_unready_src(&self, u: &DynInst) -> Option<usize> {
        u.srcs
            .iter()
            .find(|(r, p)| {
                !self.prf_ready[*p]
                    && !(u.is_store() && Some(*r) == u.data_reg && !u.addr_regs.contains(*r))
            })
            .map(|(_, p)| *p)
    }

    /// Marks physical register `phys` ready and drains its dependent
    /// list: each parked µop either becomes issue-ready or re-parks on
    /// its next unready source.
    fn publish_ready(&mut self, phys: usize) {
        self.prf_ready[phys] = true;
        let mut deps = std::mem::take(&mut self.dep_scratch);
        deps.clear();
        self.sched.drain_deps(phys, &mut deps);
        for &seq in &deps {
            let Some(i) = self.rob_index(seq) else {
                continue; // squashed (legacy backend's lazy filter);
                          // sequence numbers are never reused
            };
            if self.rob[i].status != UopStatus::Waiting {
                continue;
            }
            if self.operands_ready(&self.rob[i]) {
                self.sched.insert(SetId::IssueReady, seq, i);
            } else {
                let p = self
                    .first_unready_src(&self.rob[i])
                    .expect("not-ready µop has an unready source");
                self.sched.register_dep(p, seq, i);
            }
        }
        self.dep_scratch = deps;
    }

    fn complete_and_wakeup(&mut self) {
        let fr = self.frontier();
        let cycle = self.cycle;
        // Completions due this cycle, straight off the event wheel.
        let mut completions = std::mem::take(&mut self.completions);
        self.sched.pop_completions(cycle, &mut completions);
        for &seq in &completions {
            let Some(i) = self.rob_index(seq) else {
                continue; // squashed after scheduling; stale event
            };
            let u = &mut self.rob[i];
            let UopStatus::Executing(done) = u.status else {
                continue;
            };
            debug_assert!(done <= cycle, "completion event fired early");
            u.complete_cycle = cycle;
            // Stores without data keep waiting for their data operand;
            // everything else is done.
            let store_needs_data = u.mem.as_ref().is_some_and(|m| m.is_store && !m.data_ready);
            u.status = if store_needs_data {
                UopStatus::WaitingData
            } else {
                UopStatus::Done
            };
            let has_dsts = !u.dsts.is_empty();
            // Write results to the PRF.
            for d in &u.dsts {
                self.prf_value[d.new_phys] = d.value;
                self.prf_done[d.new_phys] = true;
            }
            if !store_needs_data && has_dsts {
                self.sched.insert(SetId::WakeupPending, seq, i);
            }
            if let Some(t) = self.tracer.as_mut() {
                t.on_complete(seq, cycle);
            }
            self.sched.mark_progress();
        }
        self.completions = completions;
        // Wakeup: grant or count every pending candidate, in age order —
        // exactly the candidates the old full-ROB scan would visit.
        if self.sched.is_empty(SetId::WakeupPending) {
            return;
        }
        let mut scratch = std::mem::take(&mut self.sched.scratch);
        scratch.clear();
        self.sched.collect(SetId::WakeupPending, &mut scratch);
        for &seq in &scratch {
            let i = self.rob_index(seq).expect("pending µop is in the ROB");
            if self.policy.may_wakeup(&self.rob[i], &self.tags, &fr) {
                self.rob[i].wakeup_done = true;
                for k in 0..self.rob[i].dsts.len() {
                    let phys = self.rob[i].dsts[k].new_phys;
                    self.publish_ready(phys);
                }
                self.sched.remove(SetId::WakeupPending, seq, i);
                self.sched.mark_progress();
            } else {
                self.stats.wakeup_blocked_cycles += 1;
                if self.tracer.is_some() {
                    let u = &self.rob[i];
                    let rule = self
                        .policy
                        .block_rule(u, BlockPoint::Wakeup, &self.tags, &fr);
                    if let Some(t) = self.tracer.as_mut() {
                        t.on_block(seq, BlockPoint::Wakeup, cycle, rule);
                    }
                }
                if self.debug_blocked {
                    let u = &self.rob[i];
                    eprintln!(
                        "wakeup-blocked idx={} {} mem_prot={:?}",
                        u.idx, u.inst, u.mem_prot
                    );
                }
            }
        }
        self.sched.scratch = scratch;
    }

    fn capture_store_data(&mut self) {
        // Candidates: stores/calls that computed their address but have
        // not yet captured their data — exactly the store-waiter set.
        if self.sched.is_empty(SetId::StoreWaiters) {
            return;
        }
        let mut scratch = std::mem::take(&mut self.sched.scratch);
        scratch.clear();
        self.sched.collect(SetId::StoreWaiters, &mut scratch);
        for &seq in &scratch {
            let i = self.rob_index(seq).expect("store waiter is in the ROB");
            let u = &self.rob[i];
            // Find the data operand.
            let (value, prot, yrot, taint, ready) = match u.inst.op {
                Op::Store { src, .. } => match src {
                    Operand::Imm(v) => (v, false, NO_ROOT, false, true),
                    Operand::Reg(r) => {
                        let p = u.src_phys(r);
                        if self.prf_ready[p] {
                            (
                                self.prf_value[p],
                                self.tags.prot[p],
                                self.tags.yrot[p],
                                self.tags.taint[p],
                                true,
                            )
                        } else {
                            (0, false, NO_ROOT, false, false)
                        }
                    }
                },
                // `call` stores its (public, constant) return address.
                Op::Call { .. } => (self.program.pc_of(u.idx + 1), false, NO_ROOT, false, true),
                _ => unreachable!("store waiter is a store or call"),
            };
            if ready {
                let u = &mut self.rob[i];
                let m = u.mem.as_mut().expect("store has mem state");
                m.value = value;
                m.data_prot = prot;
                m.data_yrot = yrot;
                m.data_taint = taint;
                m.data_ready = true;
                if matches!(u.status, UopStatus::WaitingData) {
                    u.status = UopStatus::Done;
                    if !u.dsts.is_empty() {
                        self.sched.insert(SetId::WakeupPending, seq, i);
                    }
                }
                self.sched.remove(SetId::StoreWaiters, seq, i);
                self.sched.mark_progress();
            }
        }
        self.sched.scratch = scratch;
    }

    // ------------------------------------------------------------------
    // Branch resolution & squash
    // ------------------------------------------------------------------

    fn resolve_branches(&mut self) {
        // Candidates: executed, unresolved, mispredicted branches —
        // exactly the resolve-pending set, in age order.
        if self.sched.is_empty(SetId::ResolvePending) {
            return;
        }
        let fr = self.frontier();
        let buggy = self.policy.pending_squash_bug();
        let mut chosen: Option<usize> = None;
        let mut scratch = std::mem::take(&mut self.sched.scratch);
        scratch.clear();
        self.sched.collect(SetId::ResolvePending, &mut scratch);
        for &seq in &scratch {
            let i = self
                .rob_index(seq)
                .expect("resolve candidate is in the ROB");
            if self.policy.may_resolve(&self.rob[i], &self.tags, &fr) {
                chosen = Some(i);
                break;
            }
            self.stats.resolve_blocked_cycles += 1;
            self.trace_block(i, BlockPoint::Resolve, &fr);
            if buggy {
                // Buggy arbiter (§VII-B4b): only the oldest misprediction
                // is considered, regardless of whether the defense allows
                // it to resolve — an older protected branch blocks all
                // younger squashes, leaking its predicate via timing.
                break;
            }
            // Fixed arbiter: keep scanning for a younger resolvable one.
        }
        self.sched.scratch = scratch;
        if let Some(i) = chosen {
            self.do_branch_squash(i);
        }
    }

    fn do_branch_squash(&mut self, rob_index: usize) {
        let (seq, actual_next, hist, rsb_snap, inst, idx, actual_taken) = {
            let u = &mut self.rob[rob_index];
            u.resolved = true;
            (
                u.seq,
                u.actual_next.expect("branch executed"),
                u.hist_snapshot,
                u.rsb_snapshot.clone(),
                u.inst,
                u.idx,
                u.actual_taken,
            )
        };
        self.sched.remove(SetId::ResolvePending, seq, rob_index);
        self.sched.remove(SetId::UnresolvedBranches, seq, rob_index);
        self.invalidate_frontier();
        self.sched.mark_progress();
        self.stats.branch_squashes += 1;
        self.squash_younger_than(seq, SquashKind::Branch);
        // Restore the front end to the branch's pre-fetch state, then
        // re-apply its *actual* effect.
        self.with_comp(Section::Bpred, |c| {
            c.tage.restore_history(hist);
            c.rsb.restore(&rsb_snap);
            match inst.op {
                Op::Jcc { .. } => c.tage.speculate(c.program.pc_of(idx), actual_taken),
                Op::Call { .. } => c.rsb.push(c.program.pc_of(idx + 1)),
                Op::Ret => {
                    let _ = c.rsb.pop();
                }
                _ => {}
            }
        });
        self.fetch_idx = actual_next;
        self.fetch_queue.clear();
        self.l1i_paid = None;
        self.fetch_stalled_until = self.cycle + self.cfg.redirect_penalty as u64;
    }

    /// Squashes every µop with `seq > surviving`, restoring the rename
    /// map and protection map. `kind` tags the squash-cause in the trace.
    fn squash_younger_than(&mut self, surviving: Seq, kind: SquashKind) {
        while let Some(u) = self.rob.back() {
            if u.seq <= surviving {
                break;
            }
            let u = self.rob.pop_back().expect("checked non-empty");
            self.sched.on_squash_pop(u.seq);
            self.stats.squashed += 1;
            if let Some(t) = self.tracer.as_mut() {
                t.on_squash(u.seq, self.cycle, kind);
            }
            if u.is_load() {
                self.lq_used -= 1;
            }
            if u.is_store() {
                self.sq_used -= 1;
            }
            // Undo renames in reverse order.
            for d in u.dsts.iter().rev() {
                self.rename_map[d.arch.index()] = d.prev_phys;
                self.prot_map[d.arch.index()] = d.prev_prot;
                self.free_list.push_front(d.new_phys);
                self.prf_done[d.new_phys] = false;
                self.prf_ready[d.new_phys] = false;
            }
        }
        // Squashed sequence numbers never reappear. The flat backend
        // cleaned each popped µop in `on_squash_pop`; the legacy backend
        // cleans its ordered sets in bulk here and filters wheel slots
        // and dependent lists lazily when drained. Both leave stale
        // completion events in the wheel (see `crate::sched`).
        self.sched.squash_after(surviving);
        self.invalidate_frontier();
        self.policy.on_squash(surviving);
    }

    /// Squash used by memory-order violations and division machine
    /// clears: restores the front end from the first squashed µop's
    /// snapshot.
    fn squash_and_refetch(&mut self, surviving: Seq, refetch: Option<u32>, kind: SquashKind) {
        // Find the first squashed entry's snapshot before popping.
        let snap = self
            .rob
            .iter()
            .find(|u| u.seq > surviving)
            .map(|u| (u.hist_snapshot, u.rsb_snapshot.clone()))
            .or_else(|| {
                self.fetch_queue
                    .head()
                    .map(|(f, _)| (f.hist_snapshot, f.rsb_snapshot.clone()))
            });
        self.squash_younger_than(surviving, kind);
        if let Some((h, r)) = snap {
            self.with_comp(Section::Bpred, |c| {
                c.tage.restore_history(h);
                c.rsb.restore(&r);
            });
        }
        self.fetch_idx = refetch;
        self.fetch_queue.clear();
        self.l1i_paid = None;
        self.fetch_stalled_until = self.cycle + self.cfg.redirect_penalty as u64;
        self.sched.mark_progress();
        match kind {
            SquashKind::MemOrder => self.stats.memorder_squashes += 1,
            SquashKind::DivFault => self.stats.divfault_squashes += 1,
            SquashKind::Branch => self.stats.branch_squashes += 1,
        }
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.commit_width {
            let Some(head) = self.rob.front() else { return };
            if head.status != UopStatus::Done {
                return;
            }
            if head.mispredicted && !head.resolved {
                // The resolution pass will handle it (it is always
                // allowed once non-speculative).
                return;
            }
            // Scheduler entries for the head must be cleared while it
            // still occupies ROB index 0: the flat backend frees the
            // head's ring slot at `on_commit_head`.
            {
                let head = self.rob.front().expect("checked above");
                let seq = head.seq;
                if !head.wakeup_done && !head.dsts.is_empty() {
                    // The head may commit while its wakeup is still
                    // denied — its pending entry must not outlive its
                    // ROB slot.
                    self.sched.remove(SetId::WakeupPending, seq, 0);
                }
                if head.is_load() {
                    self.sched.remove(SetId::InflightLoads, seq, 0);
                }
                if head.is_store() {
                    self.sched.remove(SetId::InflightStores, seq, 0);
                }
            }
            let u = self.rob.pop_front().expect("head exists");
            self.sched.on_commit_head();
            self.no_commit_cycles = 0;
            self.invalidate_frontier();
            self.sched.mark_progress();
            self.stats.committed += 1;
            if let Some(t) = self.tracer.as_mut() {
                t.on_commit(u.seq, self.cycle);
            }
            if u.is_load() {
                self.lq_used -= 1;
                self.stats.loads += 1;
            }
            if u.is_store() {
                self.sq_used -= 1;
                self.stats.stores += 1;
            }
            if u.inst.is_cond_branch() || u.inst.is_indirect_branch() {
                self.stats.branches += 1;
                if u.mispredicted {
                    self.stats.mispredicts += 1;
                }
            }
            // Predictor training at commit (clean, non-transient state).
            match u.inst.op {
                Op::Jcc { .. } => {
                    let (pc, pred, taken) = (u.pc, u.pred_taken, u.actual_taken);
                    self.with_comp(Section::Bpred, |c| c.tage.update(pc, pred, taken));
                }
                Op::JmpReg { .. } | Op::Ret => {
                    if let Some(Some(t)) = u.actual_next {
                        let (pc, target) = (u.pc, self.program.pc_of(t));
                        self.with_comp(Section::Bpred, |c| c.btb.update(pc, target));
                    }
                }
                _ => {}
            }
            // Stores write committed state.
            if let Some(m) = &u.mem {
                if m.is_store {
                    let addr = m.addr.expect("committed store has address");
                    self.mem.write(addr, m.size, m.value);
                    self.mem_access_for_timing(addr);
                    if self.policy.uses_protisa() {
                        let (size, prot) = (m.size, m.data_prot);
                        self.with_comp(Section::CacheMeta, |c| {
                            c.update_mem_prot_on_store(addr, size, prot)
                        });
                    }
                } else if self.policy.uses_protisa() && !u.prot_out {
                    // Loads with unprotected outputs clear the protection
                    // of the accessed bytes at commit (§IV-C2b).
                    let addr = m.addr.expect("committed load has address");
                    let size = m.size;
                    self.with_comp(Section::CacheMeta, |c| {
                        c.update_mem_prot_on_load_commit(addr, size)
                    });
                }
            }
            // Architectural register state. Committed values are always
            // readable (any defense wakeup-delay ends at non-speculation,
            // and commit is past that), so publish them even if the
            // wakeup pass never ran this µop.
            for d in &u.dsts {
                self.committed_regs[d.arch.index()] = d.value;
                self.prf_done[d.new_phys] = true;
                self.publish_ready(d.new_phys);
                // Free the previous mapping.
                self.free_list.push_back(d.prev_phys);
            }
            self.policy.on_commit(&u, &mut self.tags, &mut self.l1d);
            if self.record_traces {
                self.timing.push([
                    u.pc,
                    u.fetch_cycle,
                    u.rename_cycle,
                    u.issue_cycle,
                    u.complete_cycle,
                    self.cycle,
                ]);
                self.committed_idxs.push(u.idx);
            }
            // Machine ends / machine clears.
            match u.inst.op {
                Op::Halt => {
                    self.halted = Some(SimExit::Halted);
                    return;
                }
                Op::JmpReg { .. } | Op::Ret if u.actual_next == Some(None) => {
                    self.halted = Some(SimExit::BadControlFlow);
                    return;
                }
                _ => {}
            }
            if u.div_fault {
                // Division fault: machine clear (squash younger, refetch
                // the next instruction) — the conditional flush is the
                // divider's timing channel (§VII-B4b).
                self.squash_and_refetch(u.seq, Some(u.idx + 1), SquashKind::DivFault);
                return;
            }
        }
    }

    fn update_mem_prot_on_store(&mut self, addr: u64, size: u64, prot: bool) {
        match self.cfg.mem_prot {
            MemProtTracking::None => {}
            MemProtTracking::TaggedL1d => self.l1d.meta_set(addr, size, prot),
            MemProtTracking::PerfectShadow => {
                for i in 0..size {
                    let a = addr.wrapping_add(i);
                    if prot {
                        self.shadow_unprot.remove(&a);
                    } else {
                        self.shadow_unprot.insert(a);
                    }
                }
            }
        }
    }

    fn update_mem_prot_on_load_commit(&mut self, addr: u64, size: u64) {
        match self.cfg.mem_prot {
            MemProtTracking::None => {}
            MemProtTracking::TaggedL1d => self.l1d.meta_set(addr, size, false),
            MemProtTracking::PerfectShadow => {
                for i in 0..size {
                    self.shadow_unprot.insert(addr.wrapping_add(i));
                }
            }
        }
    }

    fn mem_prot_of(&self, addr: u64, size: u64) -> bool {
        match self.cfg.mem_prot {
            MemProtTracking::None => true,
            MemProtTracking::TaggedL1d => self.l1d.meta_any(addr, size),
            MemProtTracking::PerfectShadow => {
                (0..size).any(|i| !self.shadow_unprot.contains(&addr.wrapping_add(i)))
            }
        }
    }

    /// Walks the cache hierarchy for timing; returns the access latency.
    /// Booked to [`Section::CacheAccess`] when profiling.
    fn mem_access_for_timing(&mut self, addr: u64) -> u32 {
        self.with_comp(Section::CacheAccess, |c| c.cache_walk(addr))
    }

    /// The untimed L1D→L2→L3→DRAM walk behind
    /// [`Core::mem_access_for_timing`].
    fn cache_walk(&mut self, addr: u64) -> u32 {
        let l1 = self.l1d.access(addr);
        if l1.hit {
            return self.cfg.l1d.latency;
        }
        let l2 = self.l2.access(addr);
        if l2.hit {
            return self.cfg.l2.latency;
        }
        let l3 = self.l3.access(addr);
        if l3.hit {
            return self.cfg.l3.latency;
        }
        self.cfg.mem_latency
    }

    // ------------------------------------------------------------------
    // Issue & execute
    // ------------------------------------------------------------------

    fn issue(&mut self) {
        // Recorded for idle-cycle fast-forward: the µops the defense
        // denied this tick (an identical set would be denied every
        // skipped idle cycle).
        self.exec_blocked.clear();
        if self.sched.is_empty(SetId::IssueReady) {
            return;
        }
        let fr = self.frontier();
        // The issue window admits the `iq_size` oldest *waiting* µops,
        // ready or not — the old scan broke upon reaching the
        // (iq_size+1)-th waiting entry, so that entry's sequence number
        // is the exclusive cutoff for ready candidates.
        let cutoff = if self.sched.len(SetId::Waiting) > self.cfg.iq_size {
            self.sched
                .nth(SetId::Waiting, self.cfg.iq_size)
                .expect("length checked")
        } else {
            Seq::MAX
        };
        let mut alu_slots = self.cfg.alu_ports;
        let mut mem_slots = self.cfg.mem_ports;
        let mut issued = 0usize;
        let mut pending_violation: Option<(Seq, u32)> = None;
        let mut scratch = std::mem::take(&mut self.sched.scratch);
        scratch.clear();
        self.sched
            .collect_below(SetId::IssueReady, cutoff, &mut scratch);

        for &seq in &scratch {
            if issued >= self.cfg.issue_width || (alu_slots == 0 && mem_slots == 0) {
                break;
            }
            let i = self.rob_index(seq).expect("issue-ready µop is in the ROB");
            debug_assert_eq!(self.rob[i].status, UopStatus::Waiting);
            debug_assert!(self.operands_ready(&self.rob[i]));
            // Port availability.
            let is_mem = self.rob[i].inst.is_mem();
            if is_mem && mem_slots == 0 {
                continue;
            }
            if !is_mem && alu_slots == 0 {
                continue;
            }
            // Divider occupancy.
            if self.rob[i].inst.is_div() && self.div_busy_until > self.cycle {
                continue;
            }
            // Defense gate.
            if !self.policy.may_execute(&self.rob[i], &self.tags, &fr) {
                self.stats.exec_blocked_cycles += 1;
                self.trace_block(i, BlockPoint::Execute, &fr);
                if self.debug_blocked {
                    let u = &self.rob[i];
                    eprintln!(
                        "blocked idx={} {} seq={} sens_prot={} yrot_in={}",
                        u.idx, u.inst, u.seq, u.sens_prot, u.in_yrot
                    );
                }
                self.exec_blocked.push(seq);
                continue;
            }
            // Execute (false = blocked, e.g. a partial store overlap).
            let executed = if !self.profile_on {
                self.execute_uop(i, &mut pending_violation)
            } else {
                let t = std::time::Instant::now();
                let comp = self.comp_nanos();
                let ok = self.execute_uop(i, &mut pending_violation);
                let comp_delta = self.comp_nanos() - comp;
                self.profile
                    .add_minus(Section::Execute, t.elapsed(), comp_delta);
                ok
            };
            if executed {
                issued += 1;
                if is_mem {
                    mem_slots -= 1;
                } else {
                    alu_slots -= 1;
                }
                self.sched.remove(SetId::Waiting, seq, i);
                self.sched.remove(SetId::IssueReady, seq, i);
                self.sched.mark_progress();
                if self.tracer.is_some() {
                    let cycle = self.cycle;
                    if let Some(t) = self.tracer.as_mut() {
                        t.on_issue(seq, cycle);
                    }
                }
            }
        }
        self.sched.scratch = scratch;

        if let Some((surviving, refetch_idx)) = pending_violation {
            self.squash_and_refetch(surviving, Some(refetch_idx), SquashKind::MemOrder);
        }
    }

    fn src_val(&self, u: &DynInst, reg: Reg) -> u64 {
        self.prf_value[u.src_phys(reg)]
    }

    fn operand_val(&self, u: &DynInst, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => self.src_val(u, r),
            Operand::Imm(v) => v,
        }
    }

    /// Executes the µop at ROB index `i`. Returns `false` if it could not
    /// issue (memory structural conflict).
    fn execute_uop(&mut self, i: usize, pending_violation: &mut Option<(Seq, u32)>) -> bool {
        let cycle = self.cycle;
        let u = &self.rob[i];
        let inst = u.inst;
        let mut latency = 1u32;
        let mut dst_values: InlineVec<u64, 2> = InlineVec::new();
        let mut actual_next: Option<Option<u32>> = None;
        let mut actual_taken = false;
        let mut div_fault = false;

        match inst.op {
            Op::MovImm { dst, imm, width } => {
                let old = if width.is_partial() {
                    self.src_val(u, dst)
                } else {
                    0
                };
                dst_values.push(width.apply(old, imm));
            }
            Op::Mov { dst, src, width } => {
                let old = if width.is_partial() {
                    self.src_val(u, dst)
                } else {
                    0
                };
                dst_values.push(width.apply(old, self.src_val(u, src)));
            }
            Op::CMov { cond, dst, src } => {
                let flags = Flags::from_bits(self.src_val(u, Reg::RFLAGS));
                dst_values.push(if cond.eval(flags) {
                    self.src_val(u, src)
                } else {
                    self.src_val(u, dst)
                });
            }
            Op::Alu {
                op,
                dst,
                src1,
                src2,
                width,
            } => {
                let a = self.src_val(u, src1);
                let b = self.operand_val(u, src2);
                let old = if width.is_partial() {
                    self.src_val(u, dst)
                } else {
                    0
                };
                let (v, f) = alu_eval(op, a, b, width, old);
                dst_values.push(v);
                dst_values.push(f.to_bits());
                if op == protean_isa::AluOp::Mul {
                    latency = self.cfg.mul_latency;
                }
            }
            Op::Cmp { src1, src2 } => {
                let a = self.src_val(u, src1);
                let b = self.operand_val(u, src2);
                dst_values.push(Flags::from_sub(a, b).to_bits());
            }
            Op::Div { src1, src2, .. } => {
                let a = self.src_val(u, src1);
                let b = self.src_val(u, src2);
                let o = div_eval(a, b);
                dst_values.push(o.quotient);
                latency = o.latency;
                self.div_busy_until = cycle + o.latency as u64;
                div_fault = o.faulted;
            }
            Op::Load { addr, size, .. } => {
                let ea = addr.effective_address(|r| self.src_val(u, r));
                return self.execute_load(i, ea, size.bytes(), cycle);
            }
            Op::Ret => {
                let rsp = self.src_val(u, Reg::RSP);
                return self.execute_load(i, rsp, 8, cycle);
            }
            Op::Store { addr, size, .. } => {
                let ea = addr.effective_address(|r| self.src_val(u, r));
                return self.execute_store(i, ea, size.bytes(), cycle, pending_violation);
            }
            Op::Call { .. } => {
                let rsp = self.src_val(u, Reg::RSP).wrapping_sub(8);
                let ok = self.execute_store(i, rsp, 8, cycle, pending_violation);
                if ok {
                    let seq = {
                        let u = &mut self.rob[i];
                        u.dsts[0].value = rsp;
                        // A call's target is static: never mispredicted.
                        u.actual_next = Some(u.pred_next);
                        u.resolved = true;
                        u.seq
                    };
                    self.sched.remove(SetId::UnresolvedBranches, seq, i);
                    self.invalidate_frontier();
                }
                return ok;
            }
            Op::Jmp { target } => {
                actual_next = Some(Some(target));
            }
            Op::Jcc { cond, target } => {
                let flags = Flags::from_bits(self.src_val(u, Reg::RFLAGS));
                actual_taken = cond.eval(flags);
                actual_next = Some(Some(if actual_taken { target } else { u.idx + 1 }));
            }
            Op::JmpReg { src } => {
                let t = self.src_val(u, src);
                actual_next = Some(self.program.index_of_pc(t));
            }
            Op::Nop | Op::Halt => {}
        }

        let u = &mut self.rob[i];
        let seq = u.seq;
        u.status = UopStatus::Executing(cycle + latency as u64);
        u.issue_cycle = cycle;
        u.div_fault = div_fault;
        for (d, v) in u.dsts.iter_mut().zip(dst_values.iter().copied()) {
            d.value = v;
        }
        let mut newly_resolved = false;
        let mut newly_mispredicted = false;
        if let Some(an) = actual_next {
            u.actual_taken = actual_taken;
            u.actual_next = Some(an);
            u.mispredicted = an != u.pred_next;
            if !u.mispredicted {
                u.resolved = true;
                newly_resolved = true;
            } else {
                newly_mispredicted = true;
            }
        }
        self.sched
            .schedule_completion(cycle + latency as u64, seq, i);
        if newly_resolved {
            self.sched.remove(SetId::UnresolvedBranches, seq, i);
            self.invalidate_frontier();
        }
        if newly_mispredicted {
            self.sched.insert(SetId::ResolvePending, seq, i);
        }
        true
    }

    /// Executes a load: store-queue search, forwarding, cache access.
    /// Returns `false` if it must retry later (partial overlap / data not
    /// ready).
    fn execute_load(&mut self, i: usize, addr: u64, size: u64, cycle: u64) -> bool {
        let seq = self.rob[i].seq;
        // Search older stores, youngest first. Walking the in-flight
        // store set visits exactly the stores the old full-ROB scan
        // found at positions `(0..i).rev()`: sequence numbers are
        // assigned in ROB order, so set order equals position order.
        let mut fwd: Option<(u64, bool, Seq, bool, Seq)> = None;
        let mut blocked = false;
        self.sched.for_each_store_older(seq, i, |s_seq| {
            let j = self
                .rob_index(s_seq)
                .expect("in-flight store set entry is in the ROB");
            let s = &self.rob[j];
            let Some(m) = &s.mem else { return true };
            let Some(s_addr) = m.addr else { return true }; // unknown addr: speculate past
                                                            // Widen to u128: fuzzer-generated addresses reach u64::MAX,
                                                            // where `addr + size` overflows under debug overflow checks.
            let s_end = s_addr as u128 + m.size as u128;
            let l_end = addr as u128 + size as u128;
            if s_end <= addr as u128 || l_end <= s_addr as u128 {
                return true; // no overlap
            }
            // Overlap with the youngest older store.
            if s_addr <= addr && s_end >= l_end && m.data_ready {
                let shift = 8 * (addr - s_addr);
                let mask = if size == 8 {
                    u64::MAX
                } else {
                    (1u64 << (8 * size)) - 1
                };
                fwd = Some((
                    (m.value >> shift) & mask,
                    m.data_prot,
                    m.data_yrot,
                    m.data_taint,
                    s.seq,
                ));
            } else {
                // Partial overlap or data not ready: cannot issue yet.
                blocked = true;
            }
            false
        });
        if blocked {
            return false;
        }

        let (value, latency, mem_prot, fwd_info) = match fwd {
            Some((v, prot, yrot, taint, s_seq)) => {
                self.stats.forwards += 1;
                (v, 2u32, prot, Some((s_seq, yrot, taint)))
            }
            None => {
                let latency = 1 + self.mem_access_for_timing(addr);
                let v = self.mem.read(addr, size);
                let prot = self.with_comp(Section::CacheMeta, |c| c.mem_prot_of(addr, size));
                (v, latency, prot, None)
            }
        };

        let uses_protisa = self.policy.uses_protisa();
        let u = &mut self.rob[i];
        u.status = UopStatus::Executing(cycle + latency as u64);
        u.issue_cycle = cycle;
        let m = u.mem.as_mut().expect("load has mem state");
        m.addr = Some(addr);
        m.value = value;
        if let Some((s_seq, yrot, taint)) = fwd_info {
            m.fwd_from = Some(s_seq);
            m.fwd_data_yrot = yrot;
            m.fwd_data_taint = taint;
        }
        if uses_protisa {
            u.mem_prot = Some(mem_prot);
        }
        // Destination values: Load writes dst; Ret writes RSP.
        let mut newly_resolved = false;
        let mut newly_mispredicted = false;
        match u.inst.op {
            Op::Load { .. } => {
                u.dsts[0].value = value; // zero-extended
            }
            Op::Ret => {
                u.dsts[0].value = addr.wrapping_add(8);
                // Resolve the indirect target against the prediction.
                let target = self.program.index_of_pc(value);
                u.actual_next = Some(target);
                u.mispredicted = target != u.pred_next;
                if !u.mispredicted {
                    u.resolved = true;
                    newly_resolved = true;
                } else {
                    newly_mispredicted = true;
                }
            }
            _ => unreachable!("execute_load on non-load"),
        }
        self.sched
            .schedule_completion(cycle + latency as u64, seq, i);
        if newly_resolved {
            self.sched.remove(SetId::UnresolvedBranches, seq, i);
            self.invalidate_frontier();
        }
        if newly_mispredicted {
            self.sched.insert(SetId::ResolvePending, seq, i);
        }
        // Policy hook (access predictor resolution, taint from memory).
        let mut u = self.rob[i].clone();
        self.policy.on_load_data(&mut u, &mut self.tags, &self.l1d);
        self.rob[i] = u;
        true
    }

    /// Executes a store's address phase; detects memory-order violations.
    fn execute_store(
        &mut self,
        i: usize,
        addr: u64,
        size: u64,
        cycle: u64,
        pending_violation: &mut Option<(Seq, u32)>,
    ) -> bool {
        let seq = self.rob[i].seq;
        // Memory-order violation: any younger load that already executed
        // and overlaps (and did not forward from this or a younger
        // store). The in-flight load set replaces the old scan over ROB
        // positions `i + 1..` — same µops, same (age) order.
        self.sched.for_each_load_younger(seq, i, |l_seq| {
            let j = self
                .rob_index(l_seq)
                .expect("in-flight load set entry is in the ROB");
            let l = &self.rob[j];
            let Some(m) = &l.mem else { return true };
            let Some(l_addr) = m.addr else { return true };
            // u128 as in `execute_load`: no overflow near u64::MAX.
            let l_end = l_addr as u128 + m.size as u128;
            let s_end = addr as u128 + size as u128;
            if s_end <= l_addr as u128 || l_end <= addr as u128 {
                return true;
            }
            if let Some(f) = m.fwd_from {
                if f >= seq {
                    return true; // forwarded from this store or a younger one
                }
            }
            // Violation: squash from the load (inclusive).
            let candidate = (l.seq - 1, l.idx);
            if pending_violation.is_none_or(|(s, _)| candidate.0 < s) {
                *pending_violation = Some(candidate);
            }
            false
        });
        let u = &mut self.rob[i];
        u.status = UopStatus::Executing(cycle + 1);
        u.issue_cycle = cycle;
        let m = u.mem.as_mut().expect("store has mem state");
        m.addr = Some(addr);
        self.sched.schedule_completion(cycle + 1, seq, i);
        self.sched.insert(SetId::StoreWaiters, seq, i);
        true
    }

    // ------------------------------------------------------------------
    // Rename
    // ------------------------------------------------------------------

    /// The decoded form of static instruction `idx`: a copy out of the
    /// decode-once table, or (legacy path, `decode_cache` off) a fresh
    /// per-visit decode through the *same* lowering routine — the two
    /// paths are identical by construction and checked against each
    /// other by the `decode_cache_equiv` differential test.
    fn decoded_at(&self, idx: u32) -> DecodedInst {
        if self.decode_cache {
            *self.decoded.get(idx)
        } else {
            DecodedInst::decode(self.program, idx)
        }
    }

    /// Control-flow class of static instruction `idx` — the only
    /// decoded field fetch needs, so the cached path reads it in place
    /// instead of copying the whole `DecodedInst` out of the table.
    fn ctrl_at(&self, idx: u32) -> CtrlFlow {
        if self.decode_cache {
            self.decoded.get(idx).ctrl
        } else {
            DecodedInst::decode(self.program, idx).ctrl
        }
    }

    /// Sensitive-register set of static instruction `idx` under the
    /// active policy's transmitter set (precomputed in cached mode).
    fn sens_at(&self, idx: u32, inst: &Inst) -> RegSet {
        if self.decode_cache {
            self.sens_table[idx as usize]
        } else {
            self.policy.transmitters().sensitive_regs(inst)
        }
    }

    /// Consumes up to `fetch_width` µops from the fetch queue's front
    /// group(s). The queue hands the current group over as one slice;
    /// structural stalls (ROB/LQ/SQ/free-list) stop the whole cycle
    /// exactly as the entry-at-a-time loop did.
    fn rename(&mut self) {
        for _ in 0..self.cfg.fetch_width {
            let Some((front, ready_cycle)) = self.fetch_queue.head() else {
                return;
            };
            if ready_cycle > self.cycle {
                return;
            }
            let idx = front.idx;
            let pred_next = front.pred_next;
            let pred_taken = front.pred_taken;
            let hist_snapshot = front.hist_snapshot;
            if self.rob.len() >= self.cfg.rob_size {
                return;
            }
            let d = self.decoded_at(idx);
            if d.is_load && self.lq_used >= self.cfg.lq_size {
                return;
            }
            if d.is_store && self.sq_used >= self.cfg.sq_size {
                return;
            }
            if self.free_list.len() < d.dsts.len() {
                return;
            }
            let rsb_snapshot = self
                .fetch_queue
                .head()
                .expect("checked above")
                .0
                .rsb_snapshot
                .clone();
            self.fetch_queue.advance_head();
            let seq = self.next_seq;
            self.next_seq += 1;
            // Register the µop's ROB position with the scheduler before
            // any set insert refers to it (it will be pushed at index
            // `rob_i` below).
            let rob_i = self.rob.len();
            self.sched.on_dispatch(seq);

            // Sources first (they read the pre-update rename map).
            let srcs: InlineVec<(Reg, usize), 3> = d
                .srcs
                .iter()
                .map(|r| (*r, self.rename_map[r.index()]))
                .collect();
            let src_prot = srcs.iter().any(|(_, p)| self.tags.prot[*p]);
            let sens_arch = self.sens_at(idx, &d.inst);
            let sens_prot = srcs
                .iter()
                .any(|(r, p)| sens_arch.contains(*r) && self.tags.prot[*p]);

            // Destinations: allocate and update maps.
            let width = d.write_width;
            let mut dsts: InlineVec<DstInfo, 2> = InlineVec::new();
            for r in d.dsts.iter().copied() {
                let new_phys = self.free_list.pop_front().expect("checked space");
                let prev_phys = self.rename_map[r.index()];
                let prev_prot = self.prot_map[r.index()];
                self.rename_map[r.index()] = new_phys;
                // ProtISA rename-map protection update (§IV-C1): PROT
                // protects; unprefixed full-width writes unprotect;
                // unprefixed partial writes leave the bit unchanged.
                let new_prot = if d.inst.prot {
                    true
                } else if width.is_partial() && r == d.explicit_dst.unwrap_or(r) {
                    prev_prot
                } else {
                    false
                };
                self.prot_map[r.index()] = new_prot;
                self.tags.prot[new_phys] = new_prot;
                self.tags.taint[new_phys] = false;
                self.tags.yrot[new_phys] = NO_ROOT;
                self.prf_done[new_phys] = false;
                self.prf_ready[new_phys] = false;
                dsts.push(DstInfo {
                    arch: r,
                    new_phys,
                    prev_phys,
                    prev_prot,
                    value: 0,
                });
            }

            if d.is_load {
                self.lq_used += 1;
                self.sched.insert(SetId::InflightLoads, seq, rob_i);
            }
            if d.is_store {
                self.sq_used += 1;
                self.sched.insert(SetId::InflightStores, seq, rob_i);
            }

            let mem = if d.is_mem {
                Some(MemState {
                    addr: None,
                    size: d.mem_size,
                    is_store: d.is_store,
                    value: 0,
                    data_ready: false,
                    data_prot: false,
                    data_yrot: NO_ROOT,
                    data_taint: false,
                    fwd_from: None,
                    fwd_data_yrot: NO_ROOT,
                    fwd_data_taint: false,
                })
            } else {
                None
            };

            let mut u = DynInst {
                seq,
                idx,
                pc: d.pc,
                inst: d.inst,
                srcs,
                dsts,
                status: UopStatus::Waiting,
                mem,
                pred_next,
                pred_taken,
                actual_next: None,
                actual_taken: false,
                mispredicted: false,
                resolved: false,
                wakeup_done: false,
                hist_snapshot,
                rsb_snapshot,
                prot_out: d.inst.prot,
                src_prot,
                sens_prot,
                mem_prot: None,
                in_taint: false,
                in_yrot: NO_ROOT,
                delay_wakeup_nonspec: false,
                wakeup_hold_root: NO_ROOT,
                pred_no_access: None,
                div_fault: false,
                addr_regs: d.addr_regs,
                data_reg: d.store_data_reg,
                fetch_cycle: ready_cycle - self.cfg.frontend_depth as u64,
                rename_cycle: self.cycle,
                issue_cycle: 0,
                complete_cycle: 0,
            };
            self.policy.on_rename(&mut u, &mut self.tags);
            if let Some(t) = self.tracer.as_mut() {
                t.on_rename(&u, self.cycle);
            }
            // Dispatch into the scheduler: every µop enters the waiting
            // set; ready ones go straight to the issue-ready set, the
            // rest park on one unready source register each.
            self.sched.insert(SetId::Waiting, seq, rob_i);
            if self.operands_ready(&u) {
                self.sched.insert(SetId::IssueReady, seq, rob_i);
            } else {
                let p = self
                    .first_unready_src(&u)
                    .expect("not-ready µop has an unready source");
                self.sched.register_dep(p, seq, rob_i);
            }
            if d.is_branch {
                self.sched.insert(SetId::UnresolvedBranches, seq, rob_i);
            }
            self.invalidate_frontier();
            self.sched.mark_progress();
            // Nop/Halt and direct jumps execute trivially.
            self.rob.push_back(u);
            self.stats.fetched += 1;
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    /// Fetches one group per cycle: up to `fetch_width` µops ending at
    /// the first predicted-taken control transfer (or an L1I miss, the
    /// queue cap, or program end). The whole group is handed to the
    /// fetch queue as one slice sharing a single ready cycle — entries
    /// fetched the same cycle always shared it anyway.
    fn fetch(&mut self) {
        if self.cycle < self.fetch_stalled_until {
            return;
        }
        let cap = self.cfg.fetch_width * 3;
        // Idle fast path: nothing to fetch (program exhausted / queue at
        // cap) — skip the group bookkeeping entirely. Stall-heavy
        // defense runs spend most cycles here.
        if self.fetch_idx.is_none() || self.fetch_queue.pending() >= cap {
            return;
        }
        let mut group = self.fetch_queue.begin_group();
        for _ in 0..self.cfg.fetch_width {
            if self.fetch_queue.pending() + group.len() >= cap {
                break;
            }
            let Some(idx) = self.fetch_idx else { break };
            if idx as usize >= self.program.len() {
                self.fetch_idx = None;
                break;
            }
            let pc = self.program.pc_of(idx);
            let ctrl = self.ctrl_at(idx);
            // Instruction-cache access: a miss stalls the front end for
            // the L2 hit latency (instruction lines are L2-resident for
            // our workload sizes; the line is filled by the access that
            // booked the miss). Exactly one access is booked per fetched
            // µop: the post-stall re-fetch of the missed index skips the
            // cache entirely (`l1i_paid`) instead of booking a spurious
            // hit and bumping the LRU clock a second time.
            if self.l1i_paid == Some(idx) {
                self.l1i_paid = None;
            } else {
                let hit = self.with_comp(Section::CacheAccess, |c| c.l1i.access(pc).hit);
                if !hit {
                    self.l1i_paid = Some(idx);
                    self.fetch_stalled_until = self.cycle + self.cfg.l2.latency as u64;
                    self.sched.mark_progress();
                    break;
                }
            }
            let hist_snapshot = self.tage.history();
            let rsb_snapshot = self.rsb.snapshot_shared();
            let mut pred_taken = false;
            let pred_next: Option<u32> = match ctrl {
                CtrlFlow::Jmp { target } => Some(target),
                CtrlFlow::Call { target } => {
                    self.rsb.push(self.program.pc_of(idx + 1));
                    Some(target)
                }
                CtrlFlow::Jcc { target } => {
                    pred_taken = self.with_comp(Section::Bpred, |c| {
                        let p = c.tage.predict(pc);
                        c.tage.speculate(pc, p);
                        p
                    });
                    Some(if pred_taken { target } else { idx + 1 })
                }
                CtrlFlow::Ret => match self.rsb.pop() {
                    Some(ret_pc) => self.program.index_of_pc(ret_pc),
                    None => self
                        .btb
                        .lookup(pc)
                        .and_then(|t| self.program.index_of_pc(t)),
                },
                CtrlFlow::JmpReg => self
                    .btb
                    .lookup(pc)
                    .and_then(|t| self.program.index_of_pc(t)),
                CtrlFlow::Halt => None,
                CtrlFlow::Fall => Some(idx + 1),
            };
            group.push(FetchEntry {
                idx,
                pred_next,
                pred_taken,
                hist_snapshot,
                rsb_snapshot,
            });
            self.sched.mark_progress();
            self.fetch_idx = pred_next;
            // Stop the fetch group after a taken control transfer.
            if pred_next != Some(idx + 1) {
                break;
            }
        }
        if !group.is_empty() {
            if self.tracer.is_some() {
                let (cycle, start, len) = (self.cycle, group[0].idx, group.len() as u32);
                if let Some(t) = self.tracer.as_mut() {
                    t.on_fetch_group(cycle, start, len);
                }
            }
        }
        self.fetch_queue
            .push_group(group, self.cycle + self.cfg.frontend_depth as u64);
    }
}
