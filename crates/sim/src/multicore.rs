//! Multi-core simulation for the PARSEC-style multi-threaded workloads.
//!
//! Threads of a data-parallel workload run on their own cores with
//! private L1/L2 caches and a **shared L3**: the L3 state is threaded
//! through the per-core simulations, so capacity sharing and cross-thread
//! reuse are modelled. The workload's makespan is the slowest thread
//! (cores run the same defense configuration, as in the paper's
//! full-Alder-Lake PARSEC runs).
//!
//! Simplifications versus gem5's Ruby MESI (documented in `DESIGN.md`):
//! cores are simulated one after another rather than in lockstep, and the
//! workloads write disjoint regions (no cross-core store visibility is
//! required), so the directory protocol reduces to L3 sharing. This
//! preserves what the paper's PARSEC numbers measure — per-defense
//! slowdowns of parallel compute phases (e.g. SPT-SB's stack-access
//! stalls in `blackscholes`, §IX-A1).

use crate::defense::DefensePolicy;
use crate::pipeline::{Core, SimResult};
use crate::{Cache, CoreConfig};
use protean_arch::ArchState;
use protean_isa::Program;

/// One software thread to place on a core.
pub struct Thread<'a> {
    /// The thread's program.
    pub program: &'a Program,
    /// Its initial architectural state.
    pub initial: ArchState,
    /// The defense policy its core runs.
    pub policy: Box<dyn DefensePolicy>,
}

/// Result of a multi-core run.
#[derive(Clone, Debug)]
pub struct MulticoreResult {
    /// Per-thread results, in thread order. Each thread's `l3_hits` /
    /// `l3_misses` are the **deltas** of the shared L3's counters over
    /// that thread's run — its own traffic, not the cumulative totals
    /// of every thread that ran before it.
    pub threads: Vec<SimResult>,
    /// Makespan: the slowest thread's cycle count (the workload's
    /// execution time on the parallel machine).
    pub makespan: u64,
    /// Shared-L3 hits over the whole run (equals the sum of the
    /// per-thread deltas).
    pub l3_hits: u64,
    /// Shared-L3 misses over the whole run.
    pub l3_misses: u64,
}

impl MulticoreResult {
    /// Total committed µops across threads.
    pub fn total_committed(&self) -> u64 {
        self.threads.iter().map(|t| t.stats.committed).sum()
    }
}

/// A multi-core machine: identical cores sharing an L3.
///
/// # Examples
///
/// ```
/// use protean_arch::ArchState;
/// use protean_isa::assemble;
/// use protean_sim::{CoreConfig, Multicore, Thread, UnsafePolicy};
///
/// let prog = assemble("mov r0, 1\nhalt\n").unwrap();
/// let threads = vec![
///     Thread { program: &prog, initial: ArchState::new(), policy: Box::new(UnsafePolicy) },
///     Thread { program: &prog, initial: ArchState::new(), policy: Box::new(UnsafePolicy) },
/// ];
/// let result = Multicore::new(CoreConfig::test_tiny()).run(threads, 1_000, 100_000);
/// assert_eq!(result.threads.len(), 2);
/// assert!(result.makespan > 0);
/// ```
#[derive(Clone, Debug)]
pub struct Multicore {
    cfg: CoreConfig,
}

impl Multicore {
    /// Creates a multi-core machine with identical cores.
    pub fn new(cfg: CoreConfig) -> Multicore {
        Multicore { cfg }
    }

    /// Runs one thread per core; returns per-thread results and the
    /// makespan.
    pub fn run(
        &self,
        threads: Vec<Thread<'_>>,
        max_insts: u64,
        max_cycles: u64,
    ) -> MulticoreResult {
        let mut shared_l3 = Cache::new(self.cfg.l3, true);
        let mut results = Vec::with_capacity(threads.len());
        for t in threads {
            // The shared L3's counters are cumulative across cores:
            // snapshot them so this thread is attributed only its own
            // delta, not the traffic of every thread that ran before it.
            let (hits_before, misses_before) = (shared_l3.hits, shared_l3.misses);
            let mut core = Core::new(t.program, self.cfg.clone(), t.policy, &t.initial);
            core.install_l3(shared_l3);
            let (mut result, l3) = core.run_returning_l3(max_insts, max_cycles);
            result.stats.l3_hits = l3.hits - hits_before;
            result.stats.l3_misses = l3.misses - misses_before;
            shared_l3 = l3;
            results.push(result);
        }
        let makespan = results.iter().map(|r| r.stats.cycles).max().unwrap_or(0);
        MulticoreResult {
            threads: results,
            makespan,
            l3_hits: shared_l3.hits,
            l3_misses: shared_l3.misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnsafePolicy;
    use protean_isa::assemble;

    #[test]
    fn shared_l3_carries_warmth_across_threads() {
        // Thread 1 touches a data region; thread 2 touches the same
        // region and should see L3 hits where a cold L3 would miss.
        let src = r#"
          mov r0, 0x90000
          mov r1, 0
        loop:
          load r2, [r0 + r1*8]
          add r3, r3, r2
          add r1, r1, 1
          cmp r1, 256
          jlt loop
          halt
        "#;
        let prog = assemble(src).unwrap();
        let mk = || Thread {
            program: &prog,
            initial: ArchState::new(),
            policy: Box::new(UnsafePolicy) as Box<dyn DefensePolicy>,
        };
        let r = Multicore::new(CoreConfig::test_tiny()).run(vec![mk(), mk()], 100_000, 1_000_000);
        let t1 = &r.threads[0].stats;
        let t2 = &r.threads[1].stats;
        // Delta attribution: per-thread counters must partition the
        // shared cache's totals (no thread is charged another's traffic).
        assert_eq!(
            t1.l3_hits + t2.l3_hits,
            r.l3_hits,
            "per-thread hit deltas must sum to the shared L3's hits"
        );
        assert_eq!(
            t1.l3_misses + t2.l3_misses,
            r.l3_misses,
            "per-thread miss deltas must sum to the shared L3's misses"
        );
        // The warmth claim, on deltas: thread 1 fills the L3 (mostly
        // misses), thread 2 reuses it, so thread 2's *own* hit rate must
        // beat thread 1's.
        let rate = |hits: u64, misses: u64| hits as f64 / (hits + misses).max(1) as f64;
        let r1 = rate(t1.l3_hits, t1.l3_misses);
        let r2 = rate(t2.l3_hits, t2.l3_misses);
        assert!(
            r2 > r1,
            "second thread's delta hit rate should beat the first's ({r2:.3} vs {r1:.3})"
        );
        assert!(
            t2.l3_misses < t1.l3_misses,
            "warm L3 should spare thread 2 most misses ({} vs {})",
            t2.l3_misses,
            t1.l3_misses
        );
        assert!(t2.cycles < t1.cycles, "warm L3 should make thread 2 faster");
        assert_eq!(r.makespan, t1.cycles.max(t2.cycles));
    }
}
